"""Algebraic property tests for :class:`TernaryMatch`.

The ruleset verifier's completeness argument rests on the subtract /
intersect / contains algebra behaving like honest set operations, so these
properties pin the algebra down against exhaustive key enumeration at a
small width (8 bits = 256 keys, cheap to enumerate).  They complement the
example-based tests in ``test_ternary.py``: everything here is a law that
must hold for *all* matches, found by hypothesis rather than hand-picked.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.tcam.ternary import TernaryMatch

WIDTH = 8


@st.composite
def matches(draw, width=WIDTH):
    mask = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return TernaryMatch(value, mask, width)


def keys_of(match):
    return {key for key in range(1 << match.width) if match.matches(key)}


class TestOverlapLaws:
    @given(matches(), matches())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(matches())
    def test_overlap_is_reflexive(self, a):
        assert a.overlaps(a)

    @given(matches(), matches())
    def test_overlap_iff_intersection_nonempty(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(matches(), matches())
    def test_contains_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)


class TestContainsLaws:
    @given(matches())
    def test_contains_is_reflexive(self, a):
        assert a.contains(a)

    @given(matches(), matches())
    def test_mutual_containment_is_equality(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(matches(), matches(), matches())
    def test_contains_is_transitive(self, a, b, c):
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @given(matches())
    def test_wildcard_contains_everything(self, a):
        assert TernaryMatch.wildcard(width=WIDTH).contains(a)


class TestIntersectLaws:
    @given(matches(), matches())
    def test_intersect_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(matches())
    def test_intersect_is_idempotent(self, a):
        assert a.intersect(a) == a

    @given(matches())
    def test_wildcard_is_the_identity(self, a):
        assert a.intersect(TernaryMatch.wildcard(width=WIDTH)) == a

    @given(matches(), matches())
    def test_containment_absorbs(self, a, b):
        if a.contains(b):
            assert a.intersect(b) == b

    @given(matches(), matches(), matches())
    def test_intersect_associates(self, a, b, c):
        def chain(x, y, z):
            left = x.intersect(y)
            return None if left is None else left.intersect(z)

        assert chain(a, b, c) == chain(c, b, a)

    @given(matches(), matches())
    def test_intersection_is_contained_in_both(self, a, b):
        inter = a.intersect(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)


class TestSubtractLaws:
    @given(matches())
    def test_subtracting_self_is_empty(self, a):
        assert a.subtract(a) == []

    @given(matches(), matches())
    def test_subtract_and_intersect_partition_exactly(self, a, b):
        # a = (a - b) ⊎ (a ∩ b), with every part pairwise disjoint.
        inter = a.intersect(b)
        covered = set() if inter is None else keys_of(inter)
        for fragment in a.subtract(b):
            fragment_keys = keys_of(fragment)
            assert not fragment_keys & covered, "parts overlap"
            covered |= fragment_keys
        assert covered == keys_of(a)

    @given(matches(), matches())
    def test_fragments_are_contained_in_the_minuend(self, a, b):
        for fragment in a.subtract(b):
            assert a.contains(fragment)
            assert not fragment.overlaps(b)


class TestSizeLaw:
    @given(matches())
    def test_size_agrees_with_enumeration(self, a):
        assert a.size == len(keys_of(a))
