"""Tests for TCAM update planning (dependency analysis, placement)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcam import Action, Prefix, Rule
from repro.tcam.moveplan import (
    conflicts_with_resident,
    dependency_edges,
    naive_shift_count,
    plan_batch_placement,
    topological_layers,
)


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


@st.composite
def rule_batches(draw, max_size=10):
    count = draw(st.integers(min_value=1, max_value=max_size))
    rules = []
    for index in range(count):
        length = draw(st.integers(min_value=8, max_value=16))
        bits = draw(st.integers(min_value=0, max_value=(1 << (length - 8)) - 1))
        network = (10 << 24) | (bits << (32 - length))
        priority = draw(st.integers(min_value=1, max_value=50))
        rules.append(rule(Prefix(network, length), priority))
    return rules


class TestDependencyEdges:
    def test_overlapping_rules_ordered_by_priority(self):
        high = rule("10.0.0.0/16", 90)
        low = rule("10.0.0.0/8", 10)
        edges = dependency_edges([high, low])
        assert edges == [(high.rule_id, low.rule_id)]

    def test_disjoint_rules_are_independent(self):
        a = rule("10.0.0.0/8", 90)
        b = rule("11.0.0.0/8", 10)
        assert dependency_edges([a, b]) == []

    def test_equal_priority_overlap_is_independent(self):
        a = rule("10.0.0.0/8", 50)
        b = rule("10.0.0.0/16", 50)
        assert dependency_edges([a, b]) == []


class TestTopologicalLayers:
    def test_chain_produces_one_rule_per_layer(self):
        chain = [
            rule("10.0.0.0/24", 90),
            rule("10.0.0.0/16", 50),
            rule("10.0.0.0/8", 10),
        ]
        layers = topological_layers(chain)
        assert [len(layer) for layer in layers] == [1, 1, 1]
        assert layers[0][0].priority == 90

    def test_independent_rules_share_a_layer(self):
        batch = [rule(f"{10 + i}.0.0.0/8", 50) for i in range(4)]
        layers = topological_layers(batch)
        assert len(layers) == 1 and len(layers[0]) == 4

    @settings(max_examples=40, deadline=None)
    @given(rule_batches())
    def test_layers_respect_every_dependency(self, batch):
        layers = topological_layers(batch)
        layer_of = {
            rule.rule_id: index
            for index, layer in enumerate(layers)
            for rule in layer
        }
        assert len(layer_of) == len(batch)
        for above, below in dependency_edges(batch):
            assert layer_of[above] < layer_of[below]


class TestPlacement:
    def test_plan_uses_free_slots_only(self):
        resident = [rule(f"{20 + i}.0.0.0/8", 100) for i in range(3)]
        batch = [rule(f"10.{i}.0.0/16", 50) for i in range(4)]
        plan = plan_batch_placement(batch, resident, capacity=16)
        assert len(plan.order) == 4
        assert min(plan.slots) == len(resident)
        assert len(set(plan.slots)) == len(plan.slots)

    def test_plan_order_is_dependency_consistent(self):
        batch = [
            rule("10.0.0.0/8", 10),
            rule("10.0.0.0/16", 50),
            rule("10.0.0.0/24", 90),
        ]
        plan = plan_batch_placement(batch, [], capacity=8)
        priorities = [r.priority for r in plan.order]
        assert priorities == sorted(priorities, reverse=True)

    def test_overfull_batch_rejected(self):
        batch = [rule(f"10.{i}.0.0/16", 50) for i in range(4)]
        with pytest.raises(ValueError):
            plan_batch_placement(batch, [], capacity=3)

    def test_moves_avoided_counts_naive_shifts(self):
        resident = [rule(f"{20 + i}.0.0.0/8", 10) for i in range(5)]
        batch = [rule("10.0.0.0/8", 99)]  # naive: lands on top, shifts 5
        plan = plan_batch_placement(batch, resident, capacity=16)
        assert plan.moves_avoided == 5


class TestConflicts:
    def test_dominating_batch_rule_flagged(self):
        resident = [rule("10.0.0.0/8", 10)]
        batch = [rule("10.0.0.0/16", 99), rule("11.0.0.0/8", 99)]
        conflicted = conflicts_with_resident(batch, resident)
        assert [r.match for r in conflicted] == [batch[0].match]

    def test_lower_priority_batch_is_clean(self):
        resident = [rule("10.0.0.0/8", 90)]
        batch = [rule("10.0.0.0/16", 10)]
        assert conflicts_with_resident(batch, resident) == []


class TestNaiveShiftCount:
    def test_bottom_appends_shift_nothing(self):
        resident = [rule(f"{20 + i}.0.0.0/8", 100) for i in range(5)]
        batch = [rule("10.0.0.0/8", 1)]
        assert naive_shift_count(batch, resident) == 0

    def test_top_insert_shifts_everything(self):
        resident = [rule(f"{20 + i}.0.0.0/8", 10) for i in range(5)]
        batch = [rule("10.0.0.0/8", 99)]
        assert naive_shift_count(batch, resident) == 5

    def test_batch_shifts_accumulate(self):
        resident = [rule(f"{20 + i}.0.0.0/8", 10) for i in range(4)]
        batch = [rule("10.0.0.0/8", 99), rule("11.0.0.0/8", 99)]
        # First insert shifts 4, second shifts 4 (the first sits above it).
        assert naive_shift_count(batch, resident) == 8

    @settings(max_examples=40, deadline=None)
    @given(rule_batches(max_size=6), rule_batches(max_size=6))
    def test_matches_table_model(self, batch, resident):
        """The analytic count equals what TcamTable actually shifts."""
        from repro.tcam import TcamTable, pica8_p3290

        table = TcamTable(pica8_p3290(), capacity=64)
        for installed in resident:
            table.insert(installed)
        expected = naive_shift_count(batch, resident)
        observed = 0
        for incoming in sorted(batch, key=lambda r: -r.priority):
            observed += table.insert(incoming).shifts
        assert observed == expected
