"""Tests for the physical TCAM table model (ordering, shifting, latencies)."""

import numpy as np
import pytest

from repro.tcam import (
    Action,
    InsertOrder,
    Rule,
    RuleNotFoundError,
    TableFullError,
    TcamTable,
    TernaryMatch,
    pica8_p3290,
)


@pytest.fixture
def table():
    return TcamTable(pica8_p3290(), capacity=64, name="test")


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


class TestOrdering:
    def test_entries_kept_in_descending_priority(self, table):
        table.insert(rule("10.0.0.0/8", 5))
        table.insert(rule("11.0.0.0/8", 50))
        table.insert(rule("12.0.0.0/8", 20))
        assert [r.priority for r in table.rules()] == [50, 20, 5]

    def test_equal_priority_keeps_insertion_order(self, table):
        first = rule("10.0.0.0/8", 5)
        second = rule("11.0.0.0/8", 5)
        table.insert(first)
        table.insert(second)
        assert [r.rule_id for r in table.rules()] == [first.rule_id, second.rule_id]

    def test_lookup_returns_highest_priority_match(self, table):
        low = rule("10.0.0.0/8", 5, port=1)
        high = rule("10.1.0.0/16", 50, port=2)
        table.insert(low)
        table.insert(high)
        from repro.tcam import Prefix

        hit = table.lookup(Prefix.from_string("10.1.2.3").network)
        assert hit.rule_id == high.rule_id

    def test_lookup_miss_returns_none(self, table):
        table.insert(rule("10.0.0.0/8", 5))
        from repro.tcam import Prefix

        assert table.lookup(Prefix.from_string("11.0.0.1").network) is None


class TestShifting:
    def test_append_at_bottom_has_zero_shifts(self, table):
        table.insert(rule("10.0.0.0/8", 50))
        result = table.insert(rule("11.0.0.0/8", 5))
        assert result.shifts == 0

    def test_insert_at_top_shifts_everything(self, table):
        for index in range(5):
            table.insert(rule(f"{10 + index}.0.0.0/8", 10))
        result = table.insert(rule("20.0.0.0/8", 99))
        assert result.shifts == 5
        assert result.position == 0

    def test_zero_shift_insert_is_cheaper(self, table):
        for index in range(20):
            table.insert(rule(f"{10 + index}.0.0.0/8", 50))
        shifting = table.timing.insertion_latency(20, shifts=20)
        appending = table.timing.insertion_latency(20, shifts=0)
        assert appending < shifting

    def test_latency_grows_with_occupancy(self):
        timing = pica8_p3290()
        sparse = timing.insertion_latency(50, shifts=50)
        dense = timing.insertion_latency(1000, shifts=1000)
        assert dense > sparse * 10


class TestCapacity:
    def test_full_table_rejects_insert(self):
        table = TcamTable(pica8_p3290(), capacity=2)
        table.insert(rule("10.0.0.0/8", 1))
        table.insert(rule("11.0.0.0/8", 1))
        assert table.is_full
        with pytest.raises(TableFullError):
            table.insert(rule("12.0.0.0/8", 1))

    def test_free_entries(self, table):
        assert table.free_entries == 64
        table.insert(rule("10.0.0.0/8", 1))
        assert table.free_entries == 63

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TcamTable(pica8_p3290(), capacity=0)


class TestMutations:
    def test_delete_removes_rule(self, table):
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        table.delete(r.rule_id)
        assert table.occupancy == 0
        assert r.rule_id not in table

    def test_delete_unknown_raises(self, table):
        with pytest.raises(RuleNotFoundError):
            table.delete(999999)

    def test_duplicate_insert_raises(self, table):
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        with pytest.raises(ValueError):
            table.insert(r)

    def test_delete_is_faster_than_shifting_insert(self, table):
        for index in range(30):
            table.insert(rule(f"{10 + index}.0.0.0/8", 40))
        r = rule("50.0.0.0/8", 99)
        insert_latency = table.insert(r).latency
        delete_latency = table.delete(r.rule_id).latency
        assert delete_latency < insert_latency

    def test_modify_action_in_place(self, table):
        r = rule("10.0.0.0/8", 5, port=1)
        table.insert(r)
        table.modify(r.rule_id, action=Action.output(7))
        assert table.get(r.rule_id).action.port == 7
        assert table.get(r.rule_id).priority == 5

    def test_modify_match_in_place(self, table):
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        new_match = TernaryMatch.from_string("11.0.0.0/8")
        table.modify(r.rule_id, match=new_match)
        assert table.get(r.rule_id).match == new_match

    def test_modify_has_constant_latency(self, table):
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        latency = table.modify(r.rule_id, action=Action.drop()).latency
        assert latency == pytest.approx(table.timing.modify_latency)

    def test_delete_where(self, table):
        table.insert(rule("10.0.0.0/8", 5))
        table.insert(rule("11.0.0.0/8", 6))
        table.insert(rule("12.0.0.0/8", 7))
        table.delete_where(lambda r: r.priority >= 6)
        assert table.occupancy == 1

    def test_clear_empties_table(self, table):
        for index in range(4):
            table.insert(rule(f"{10 + index}.0.0.0/8", index))
        table.clear()
        assert table.occupancy == 0


class TestStats:
    def test_stats_accumulate(self, table):
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        table.modify(r.rule_id, action=Action.drop())
        table.delete(r.rule_id)
        assert table.stats.insertions == 1
        assert table.stats.modifications == 1
        assert table.stats.deletions == 1
        assert table.stats.busy_time > 0

    def test_noise_requires_rng(self):
        noisy = TcamTable(pica8_p3290(), capacity=8, rng=np.random.default_rng(1))
        quiet = TcamTable(pica8_p3290(), capacity=8)
        noisy_latencies = set()
        for index in range(5):
            noisy_latencies.add(noisy.insert(rule(f"{10 + index}.0.0.0/8", 50)).latency)
        assert len(noisy_latencies) == 5  # lognormal noise differs per call
        first = quiet.insert(rule("10.0.0.0/8", 50)).latency
        assert first == quiet.timing.insertion_latency(0, shifts=0)
