"""Tests for the prefix trie and the rule overlap index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcam import Action, Prefix, Rule, TernaryMatch
from repro.tcam.trie import PrefixRuleIndex, PrefixTrie


def P(text):
    return Prefix.from_string(text)


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


@st.composite
def prefixes_10slash8(draw):
    length = draw(st.integers(min_value=8, max_value=20))
    bits = draw(st.integers(min_value=0, max_value=(1 << (length - 8)) - 1))
    network = (10 << 24) | (bits << (32 - length))
    return Prefix(network, length)


class TestPrefixTrie:
    def test_insert_and_size(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), rule("10.0.0.0/8", 1))
        assert len(trie) == 1

    def test_duplicate_id_at_same_prefix_rejected(self):
        trie = PrefixTrie()
        r = rule("10.0.0.0/8", 1)
        trie.insert(P("10.0.0.0/8"), r)
        with pytest.raises(ValueError):
            trie.insert(P("10.0.0.0/8"), r)

    def test_remove_is_idempotent(self):
        trie = PrefixTrie()
        r = rule("10.0.0.0/8", 1)
        trie.insert(P("10.0.0.0/8"), r)
        assert trie.remove(P("10.0.0.0/8"), r.rule_id)
        assert not trie.remove(P("10.0.0.0/8"), r.rule_id)
        assert len(trie) == 0

    def test_overlapping_finds_ancestors_and_descendants(self):
        trie = PrefixTrie()
        ancestor = rule("10.0.0.0/8", 1)
        exact = rule("10.1.0.0/16", 2)
        descendant = rule("10.1.2.0/24", 3)
        sibling = rule("10.2.0.0/16", 4)
        for r in (ancestor, exact, descendant, sibling):
            trie.insert(r.match.to_prefix(), r)
        found = {r.rule_id for r in trie.overlapping(P("10.1.0.0/16"))}
        assert found == {ancestor.rule_id, exact.rule_id, descendant.rule_id}

    def test_disjoint_prefix_finds_nothing(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), rule("10.0.0.0/8", 1))
        assert list(trie.overlapping(P("11.0.0.0/8"))) == []

    def test_default_route_overlaps_everything(self):
        trie = PrefixTrie()
        rules = [rule(f"{i}.0.0.0/8", i) for i in range(1, 6)]
        for r in rules:
            trie.insert(r.match.to_prefix(), r)
        found = list(trie.overlapping(Prefix.default_route()))
        assert len(found) == 5

    @settings(max_examples=50, deadline=None)
    @given(st.lists(prefixes_10slash8(), min_size=1, max_size=20), prefixes_10slash8())
    def test_overlapping_agrees_with_linear_scan(self, stored, query):
        trie = PrefixTrie()
        rules = []
        for index, prefix in enumerate(stored):
            r = Rule.from_prefix(prefix, index + 1, Action.output(1))
            trie.insert(prefix, r)
            rules.append(r)
        expected = {
            r.rule_id for r in rules if r.match.to_prefix().overlaps(query)
        }
        found = {r.rule_id for r in trie.overlapping(query)}
        assert found == expected


class TestPrefixRuleIndex:
    def test_add_discard_roundtrip(self):
        index = PrefixRuleIndex()
        r = rule("10.0.0.0/8", 1)
        index.add(r)
        assert len(index) == 1
        assert index.discard(r.rule_id)
        assert not index.discard(r.rule_id)
        assert len(index) == 0

    def test_duplicate_add_rejected(self):
        index = PrefixRuleIndex()
        r = rule("10.0.0.0/8", 1)
        index.add(r)
        with pytest.raises(ValueError):
            index.add(r)

    def test_non_prefix_rules_indexed_too(self):
        index = PrefixRuleIndex()
        ternary = Rule(
            match=TernaryMatch(value=1, mask=1, width=32),  # low bit set
            priority=9,
            action=Action.output(2),
        )
        index.add(ternary)
        probe = rule("0.0.0.0/0", 1)
        assert ternary.rule_id in {r.rule_id for r in index.overlapping(probe)}
        assert index.discard(ternary.rule_id)

    def test_blockers_filter_by_priority(self):
        index = PrefixRuleIndex()
        low = rule("10.0.0.0/8", 10)
        high = rule("10.0.0.0/16", 90)
        index.add(low)
        index.add(high)
        query = rule("10.0.0.0/12", 50)
        blockers = index.blockers_for(query)
        assert [b.rule_id for b in blockers] == [high.rule_id]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(prefixes_10slash8(), st.integers(min_value=1, max_value=99)),
            min_size=1,
            max_size=15,
        ),
        prefixes_10slash8(),
        st.integers(min_value=1, max_value=99),
    )
    def test_blockers_agree_with_detect_overlaps(self, stored, query_prefix, query_prio):
        from repro.core import detect_overlaps

        index = PrefixRuleIndex()
        rules = []
        for prefix, priority in stored:
            r = Rule.from_prefix(prefix, priority, Action.output(1))
            index.add(r)
            rules.append(r)
        query = Rule.from_prefix(query_prefix, query_prio, Action.output(2))
        expected = {r.rule_id for r in detect_overlaps(query, rules)}
        found = {r.rule_id for r in index.blockers_for(query)}
        assert found == expected
