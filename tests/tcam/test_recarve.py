"""Tests for in-place slice resizing (the ModQoSConfig substrate)."""

import pytest

from repro.tcam import Action, CarvedTcam, Rule, SliceConfig, pica8_p3290


def carve(shadow=64, main=1024):
    return CarvedTcam(
        pica8_p3290(),
        [
            SliceConfig("shadow", shadow, lookup_priority=10),
            SliceConfig("main", main, lookup_priority=1),
        ],
    )


def rule(prefix, priority):
    return Rule.from_prefix(prefix, priority, Action.output(1))


class TestRecarve:
    def test_grow_within_physical_capacity(self):
        tcam = carve(shadow=64, main=1024)
        tcam.recarve("shadow", 128)
        assert tcam.slice("shadow").capacity == 128
        assert tcam.total_capacity == 128 + 1024

    def test_shrink_empty_slice(self):
        tcam = carve()
        tcam.recarve("shadow", 8)
        assert tcam.slice("shadow").capacity == 8

    def test_shrink_below_occupancy_rejected(self):
        tcam = carve(shadow=8)
        for index in range(4):
            tcam.slice("shadow").insert(rule(f"{10 + index}.0.0.0/8", 5))
        with pytest.raises(ValueError):
            tcam.recarve("shadow", 3)
        assert tcam.slice("shadow").capacity == 8  # unchanged on failure

    def test_exceeding_physical_capacity_rejected(self):
        tcam = carve(shadow=64, main=1024)
        with pytest.raises(ValueError):
            tcam.recarve("main", 3072)  # 64 + 3072 > 3072 physical

    def test_unknown_slice_rejected(self):
        with pytest.raises(KeyError):
            carve().recarve("bogus", 10)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            carve().recarve("shadow", 0)

    def test_recarve_preserves_contents_and_lookup(self):
        tcam = carve()
        r = rule("10.0.0.0/8", 5)
        tcam.slice("shadow").insert(r)
        tcam.recarve("shadow", 32)
        assert r.rule_id in tcam.slice("shadow")
        from repro.tcam import Prefix

        assert tcam.lookup(Prefix.from_string("10.1.1.1").network) is not None

    def test_shrink_then_grow_roundtrip(self):
        tcam = carve(shadow=64, main=1024)
        tcam.recarve("shadow", 16)
        tcam.recarve("main", 2048)
        assert tcam.total_capacity == 16 + 2048
