"""Tests for TcamTable change notifications and the O(1) accessors."""

import pytest

from repro.tcam import Action, Rule, TcamTable, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


class RecordingListener:
    def __init__(self):
        self.events = []

    def rule_installed(self, rule):
        self.events.append(("install", rule.rule_id))

    def rule_removed(self, rule):
        self.events.append(("remove", rule.rule_id))

    def rule_modified(self, old, new):
        self.events.append(("modify", old.rule_id, new.action.kind))


class PartialListener:
    """Only cares about installs; other events must be skipped silently."""

    def __init__(self):
        self.installs = 0

    def rule_installed(self, rule):
        self.installs += 1


class TestListeners:
    def test_all_events_delivered(self):
        table = TcamTable(pica8_p3290(), capacity=8)
        listener = RecordingListener()
        table.add_listener(listener)
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        table.modify(r.rule_id, action=Action.drop())
        table.delete(r.rule_id)
        assert listener.events == [
            ("install", r.rule_id),
            ("modify", r.rule_id, "drop"),
            ("remove", r.rule_id),
        ]

    def test_partial_listener_tolerated(self):
        table = TcamTable(pica8_p3290(), capacity=8)
        listener = PartialListener()
        table.add_listener(listener)
        r = rule("10.0.0.0/8", 5)
        table.insert(r)
        table.delete(r.rule_id)  # no rule_removed handler: must not raise
        assert listener.installs == 1

    def test_multiple_listeners(self):
        table = TcamTable(pica8_p3290(), capacity=8)
        first, second = RecordingListener(), RecordingListener()
        table.add_listener(first)
        table.add_listener(second)
        table.insert(rule("10.0.0.0/8", 5))
        assert len(first.events) == 1
        assert len(second.events) == 1

    def test_clear_notifies_per_rule(self):
        table = TcamTable(pica8_p3290(), capacity=8)
        listener = RecordingListener()
        table.add_listener(listener)
        for index in range(3):
            table.insert(rule(f"{10 + index}.0.0.0/8", 5))
        table.clear()
        removes = [event for event in listener.events if event[0] == "remove"]
        assert len(removes) == 3


class TestLowestPriority:
    def test_empty_table(self):
        assert TcamTable(pica8_p3290(), capacity=8).lowest_priority is None

    def test_tracks_bottom_entry(self):
        table = TcamTable(pica8_p3290(), capacity=8)
        table.insert(rule("10.0.0.0/8", 50))
        table.insert(rule("11.0.0.0/8", 5))
        assert table.lowest_priority == 5
        table.delete_where(lambda r: r.priority == 5)
        assert table.lowest_priority == 50
