"""Unit and property tests for ternary match algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcam.prefix import Prefix
from repro.tcam.ternary import TernaryMatch


def T(text):
    return TernaryMatch.from_string(text)


@st.composite
def ternary_matches(draw, width=8):
    mask = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return TernaryMatch(value, mask, width)


def keys_of(match):
    """Enumerate every concrete key a (small-width) match covers."""
    return {key for key in range(1 << match.width) if match.matches(key)}


class TestConstruction:
    def test_bit_pattern_parsing(self):
        m = T("10*1")
        assert m.width == 4
        assert m.matches(0b1011) and m.matches(0b1001)
        assert not m.matches(0b1010)

    def test_prefix_string_parsing(self):
        m = T("10.0.0.0/8")
        assert m.width == 32
        assert m.matches(Prefix.from_string("10.9.8.7").network)

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            TernaryMatch(value=0b10, mask=0b01, width=2)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            TernaryMatch(value=0, mask=1 << 8, width=8)

    def test_wildcard_matches_everything(self):
        w = TernaryMatch.wildcard(width=6)
        assert len(keys_of(w)) == 64

    def test_str_roundtrip_bits(self):
        assert str(T("1*01")) == "1*01"

    def test_str_prefix_form(self):
        assert str(T("10.0.0.0/8")) == "10.0.0.0/8"


class TestPredicates:
    def test_size_counts_wildcards(self):
        assert T("1**0").size == 4

    def test_overlap_symmetric(self):
        a, b = T("10**"), T("1*1*")
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint(self):
        assert not T("00**").overlaps(T("11**"))

    def test_contains(self):
        assert T("1***").contains(T("10*1"))
        assert not T("10*1").contains(T("1***"))

    def test_contains_implies_overlaps(self):
        assert T("1***").overlaps(T("10*1"))

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            T("1*").overlaps(T("1**"))


class TestSetOperations:
    def test_intersect_exact(self):
        a, b = T("10**"), T("1*1*")
        inter = a.intersect(b)
        assert keys_of(inter) == keys_of(a) & keys_of(b)

    def test_intersect_disjoint_is_none(self):
        assert T("0***").intersect(T("1***")) is None

    def test_subtract_exact_complement(self):
        a, b = T("10**"), T("1*1*")
        fragments = a.subtract(b)
        covered = set()
        for fragment in fragments:
            fragment_keys = keys_of(fragment)
            assert not fragment_keys & keys_of(b), "fragment overlaps the hole"
            assert not fragment_keys & covered, "fragments overlap each other"
            covered |= fragment_keys
        assert covered == keys_of(a) - keys_of(b)

    def test_subtract_disjoint_returns_self(self):
        a = T("0***")
        assert a.subtract(T("1***")) == [a]

    def test_subtract_containing_is_empty(self):
        assert T("10*1").subtract(T("1***")) == []

    @given(ternary_matches(), ternary_matches())
    def test_subtract_property(self, a, b):
        fragments = a.subtract(b)
        covered = set()
        for fragment in fragments:
            fragment_keys = keys_of(fragment)
            assert not fragment_keys & keys_of(b)
            assert not fragment_keys & covered
            covered |= fragment_keys
        assert covered == keys_of(a) - keys_of(b)

    @given(ternary_matches(), ternary_matches())
    def test_intersect_property(self, a, b):
        inter = a.intersect(b)
        expected = keys_of(a) & keys_of(b)
        if inter is None:
            assert not expected
        else:
            assert keys_of(inter) == expected

    @given(ternary_matches(), ternary_matches())
    def test_overlap_agrees_with_enumeration(self, a, b):
        assert a.overlaps(b) == bool(keys_of(a) & keys_of(b))

    @given(ternary_matches(), ternary_matches())
    def test_contains_agrees_with_enumeration(self, a, b):
        assert a.contains(b) == (keys_of(b) <= keys_of(a))


class TestPrefixConversion:
    def test_prefix_roundtrip(self):
        p = Prefix.from_string("172.16.0.0/12")
        assert TernaryMatch.from_prefix(p).to_prefix() == p

    def test_non_prefix_shape(self):
        assert T("1*0*").to_prefix() is None
        assert not T("1*0*").is_prefix

    def test_wildcard_is_default_route(self):
        assert TernaryMatch.wildcard().to_prefix() == Prefix.default_route()
