"""Tests for TCAM carving into shadow/main slices."""

import pytest

from repro.tcam import (
    Action,
    CarvedTcam,
    Prefix,
    Rule,
    SliceConfig,
    pica8_p3290,
)


def carve(shadow=64, main=1024):
    return CarvedTcam(
        pica8_p3290(),
        [
            SliceConfig("shadow", shadow, lookup_priority=10),
            SliceConfig("main", main, lookup_priority=1),
        ],
    )


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


class TestCarving:
    def test_slices_have_requested_sizes(self):
        tcam = carve(shadow=32, main=512)
        assert tcam.slice("shadow").capacity == 32
        assert tcam.slice("main").capacity == 512
        assert tcam.total_capacity == 544

    def test_carve_cannot_exceed_physical_capacity(self):
        with pytest.raises(ValueError):
            carve(shadow=1024, main=3000)  # Pica8 capacity is 3072

    def test_duplicate_slice_names_rejected(self):
        with pytest.raises(ValueError):
            CarvedTcam(
                pica8_p3290(),
                [SliceConfig("x", 10, 1), SliceConfig("x", 10, 2)],
            )

    def test_zero_capacity_slice_rejected(self):
        with pytest.raises(ValueError):
            SliceConfig("shadow", 0, 1)

    def test_unknown_slice_raises(self):
        with pytest.raises(KeyError):
            carve().slice("bogus")

    def test_slice_names_by_lookup_priority(self):
        assert carve().slice_names() == ["shadow", "main"]


class TestIndependentOccupancy:
    def test_shadow_insert_cost_ignores_main_occupancy(self):
        """The core Hermes property: filling the main slice must not slow
        down inserts into the (empty) shadow slice."""
        tcam = carve(shadow=64, main=1024)
        for index in range(500):
            tcam.slice("main").insert(
                rule(f"10.{index // 250}.{index % 250}.0/24", 10)
            )
        main_cost = tcam.slice("main").insert(rule("172.16.0.0/16", 99)).latency
        shadow_cost = tcam.slice("shadow").insert(rule("172.17.0.0/16", 99)).latency
        assert shadow_cost < main_cost / 10

    def test_total_occupancy_sums_slices(self):
        tcam = carve()
        tcam.slice("shadow").insert(rule("10.0.0.0/8", 1))
        tcam.slice("main").insert(rule("11.0.0.0/8", 1))
        assert tcam.total_occupancy == 2


class TestCrossSliceLookup:
    def test_higher_priority_slice_wins(self):
        tcam = carve()
        main_rule = rule("10.0.0.0/8", 99, port=1)
        shadow_rule = rule("10.0.0.0/8", 1, port=2)
        tcam.slice("main").insert(main_rule)
        tcam.slice("shadow").insert(shadow_rule)
        hit = tcam.lookup(Prefix.from_string("10.1.1.1").network)
        assert hit is not None
        slice_name, matched = hit
        # The shadow slice has higher lookup priority, so its rule wins even
        # though the main-table rule has a higher rule priority — this is
        # exactly the correctness hazard Hermes's partitioner exists to fix.
        assert slice_name == "shadow"
        assert matched.action.port == 2

    def test_miss_falls_through_to_main(self):
        tcam = carve()
        tcam.slice("main").insert(rule("10.0.0.0/8", 5, port=3))
        slice_name, matched = tcam.lookup(Prefix.from_string("10.2.3.4").network)
        assert slice_name == "main"
        assert matched.action.port == 3

    def test_full_miss_returns_none(self):
        assert carve().lookup(0) is None

    def test_find_rule_locates_slice(self):
        tcam = carve()
        r = rule("10.0.0.0/8", 5)
        tcam.slice("shadow").insert(r)
        slice_name, found = tcam.find_rule(r.rule_id)
        assert slice_name == "shadow"
        assert found.rule_id == r.rule_id
        assert tcam.find_rule(424242) is None
