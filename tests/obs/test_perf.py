"""Tests for ``repro.obs.perf``: profiler, burn ledger, bench layer, CLI.

The load-bearing test is the cross-process parity check: a chaos run with
the profiler attached must produce the *same pinned digests* as the
uninstrumented seed capture — observation must not perturb, with zero
tolerance.  The rest exercises the attribution math, the guarantee-burn
ledger, the ``hermes-bench/1`` artifact layer, and the ``perf`` CLI.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.perf.bench import (
    BENCH_FORMAT,
    HeadlineDelta,
    append_history,
    bench_artifact,
    compare,
    load_artifact,
    machine_fingerprint,
    metric_direction,
    read_history,
    write_bench_artifact,
    write_index,
)
from repro.obs.perf.burn import (
    DEFAULT_GUARANTEE_SECONDS,
    guarantee_burn,
)
from repro.obs.perf.flame import trace_collapsed
from repro.obs.perf.profiler import (
    Profiler,
    UNATTRIBUTED_LABELS,
    subsystem_of,
)
from repro.obs.summary import FlowModBreakdown
from repro.obs.tracer import RecordingTracer

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# The chaos scenario's pinned seed digests (tests/engine/test_parity.py):
# the profiler-off subprocess must still reproduce them, and profiler-on
# must match profiler-off byte-for-byte.
CHAOS_RESULT_DIGEST = (
    "acbdc2d3d7e6aa00fe02c53b73b6aa8213ea634e2e4d8f3ee09eab7b8575c244"
)
CHAOS_TRACE_DIGEST = (
    "f9af0d1c220df4e67fdd252413ce0f9e8cc0b32694975bedfd5256ca55adaddb"
)


# ---------------------------------------------------------------------------
# Subsystem attribution
# ---------------------------------------------------------------------------

class TestSubsystemOf:
    def test_dispatch_labels(self):
        assert subsystem_of("event:epoch") == "fairshare"
        assert subsystem_of("event:complete") == "completion"
        assert subsystem_of("event:flowmod-arrive") == "channel"
        assert subsystem_of("event:activate") == "installer"
        assert subsystem_of("event:something-new") == "kernel-dispatch"

    def test_span_labels(self):
        assert subsystem_of("span:agent.action") == "switch-cpu"
        assert subsystem_of("span:install.path") == "installer"
        assert subsystem_of("span:hermes.migration") == "rule-manager"
        assert subsystem_of("span:hermes.gatekeeper") == "gatekeeper"
        assert subsystem_of("span:verify.online") == "verifier"

    def test_loop_marks(self):
        assert subsystem_of("sim.arrival") == "arrival"
        assert subsystem_of("sim.completion") == "completion"

    def test_unknown_labels_map_to_themselves(self):
        # New instrumentation points surface by name, never as "other".
        assert subsystem_of("somewhere.else") == "somewhere.else"


class _FakeEvent:
    def __init__(self, kind):
        self.kind = kind


class TestProfilerSegments:
    def test_segment_counts_and_attribution(self):
        profiler = Profiler(meta={"scenario": "unit"})
        profiler.begin()
        profiler.on_dispatch(_FakeEvent("epoch"))
        profiler.on_dispatch(_FakeEvent("epoch"))
        profiler.mark("sim.arrival")
        profiler.on_dispatch(_FakeEvent("flowmod-arrive"))
        report = profiler.finish()

        assert report.segments["event:epoch"][0] == 2
        assert report.segments["sim.arrival"][0] == 1
        assert report.segments["event:flowmod-arrive"][0] == 1
        assert report.meta == {"scenario": "unit"}
        assert profiler.events_seen == 3
        # Everything between begin() and the first cut is "setup" and
        # excluded from attribution; everything after the first dispatch
        # is attributed.
        assert 0.0 < report.attributed_seconds <= report.total_seconds
        attributed = sum(
            seconds
            for label, (_count, seconds) in report.segments.items()
            if label not in UNATTRIBUTED_LABELS
        )
        assert report.attributed_seconds == pytest.approx(attributed)

    def test_finish_is_idempotent(self):
        profiler = Profiler()
        profiler.begin()
        profiler.on_dispatch(_FakeEvent("epoch"))
        first = profiler.finish()
        second = profiler.finish()
        assert first.total_seconds == second.total_seconds
        assert first.segments == second.segments

    def test_finish_without_begin(self):
        report = Profiler().finish()
        assert report.total_seconds == 0.0
        assert report.attributed_fraction == 0.0

    def test_report_round_trips_to_json(self):
        profiler = Profiler()
        profiler.begin()
        profiler.on_dispatch(_FakeEvent("epoch"))
        report = profiler.finish()
        payload = json.loads(json.dumps(report.to_dict()))
        assert "event:epoch" in payload["segments"]
        assert payload["subsystems"]
        assert 0.0 <= payload["attributed_fraction"] <= 1.0

    def test_collapsed_stacks_carry_subsystem_prefix(self):
        profiler = Profiler()
        profiler.begin()
        for _ in range(50):
            profiler.on_dispatch(_FakeEvent("epoch"))
        report = profiler.finish()
        lines = report.collapsed()
        assert any(line.startswith("fairshare;event:epoch ") for line in lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0

    def test_render_mentions_subsystems(self):
        profiler = Profiler()
        profiler.begin()
        profiler.on_dispatch(_FakeEvent("epoch"))
        text = profiler.finish().render()
        assert "attributed" in text
        assert "fairshare" in text


class TestWatchTracer:
    def test_span_self_and_cumulative_nesting(self):
        tracer = RecordingTracer()
        profiler = Profiler().watch_tracer(tracer)
        profiler.begin()
        outer = tracer.start_span("flowmod", 0.0)
        inner = tracer.start_span("agent.action", 0.1)
        inner.finish(0.2)
        outer.finish(0.3)
        report = profiler.finish()

        assert report.spans["flowmod"].count == 1
        assert report.spans["agent.action"].count == 1
        # The child's wall time is subtracted from the parent's self time.
        flowmod = report.spans["flowmod"]
        action = report.spans["agent.action"]
        assert flowmod.cumulative_seconds >= flowmod.self_seconds
        assert flowmod.cumulative_seconds == pytest.approx(
            flowmod.self_seconds + action.cumulative_seconds, abs=1e-3
        )

    def test_recorded_trace_is_unchanged_by_profiling(self):
        plain = RecordingTracer()
        span = plain.start_span("flowmod", 0.0, switch="s1")
        span.finish(0.5)
        plain.event("hermes.gatekeeper", 0.1, latency=1e-4)

        watched = RecordingTracer()
        Profiler().watch_tracer(watched).begin()
        span = watched.start_span("flowmod", 0.0, switch="s1")
        span.finish(0.5)
        watched.event("hermes.gatekeeper", 0.1, latency=1e-4)

        assert plain.records == watched.records

    def test_double_finish_counts_once(self):
        tracer = RecordingTracer()
        profiler = Profiler().watch_tracer(tracer)
        profiler.begin()
        span = tracer.start_span("flowmod", 0.0)
        span.finish(0.1)
        span.finish(0.2)  # idempotent at the tracer; profiler must agree
        report = profiler.finish()
        assert report.spans["flowmod"].count == 1
        assert len(tracer.records) == 1

    def test_scheduler_seam_attaches_and_detaches(self):
        from repro.engine import EventScheduler

        scheduler = EventScheduler()
        assert scheduler.profiler is None
        profiler = Profiler().watch_scheduler(scheduler)
        assert scheduler.profiler is profiler
        scheduler.schedule(0.0, "epoch")
        profiler.begin()
        scheduler.pop()
        assert profiler.events_seen == 1
        scheduler.attach_profiler(None)
        assert scheduler.profiler is None
        scheduler.schedule(0.1, "epoch")
        scheduler.pop()
        assert profiler.events_seen == 1


# ---------------------------------------------------------------------------
# Cross-process parity: profiling must not perturb the run
# ---------------------------------------------------------------------------

_PARITY_SCRIPT = r"""
import hashlib
import json
import sys

from repro.experiments.common import canned_scenario
from repro.obs import RecordingTracer, trace_lines, use_tracer
from repro.obs.perf import Profiler

mode = sys.argv[1]
tracer = RecordingTracer(meta={"scenario": "engine-parity"})
with use_tracer(tracer):
    simulation, _meta = canned_scenario("chaos")
    profiler = None
    if mode == "on":
        profiler = Profiler()
        profiler.watch_simulation(simulation)
        profiler.watch_tracer(tracer)
        profiler.begin()
    metrics = simulation.run()
fraction = 0.0
if profiler is not None:
    fraction = profiler.finish().attributed_fraction
payload = json.dumps(
    [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
).encode()
trace_payload = "\n".join(trace_lines(tracer)).encode()
print(json.dumps({
    "result": hashlib.sha256(payload).hexdigest(),
    "trace": hashlib.sha256(trace_payload).hexdigest(),
    "attributed_fraction": fraction,
}))
"""


def _run_parity(mode: str) -> dict:
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = (
        os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, "-c", _PARITY_SCRIPT, mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout.strip())


class TestProfilerParity:
    """Profiler-on and profiler-off runs in fresh interpreters."""

    def test_profiled_chaos_run_matches_the_pinned_seed(self):
        on = _run_parity("on")
        off = _run_parity("off")
        # The uninstrumented run still reproduces the seed captures...
        assert off["result"] == CHAOS_RESULT_DIGEST
        assert off["trace"] == CHAOS_TRACE_DIGEST
        # ...and attaching the profiler changes neither metrics nor trace.
        assert on["result"] == off["result"]
        assert on["trace"] == off["trace"]
        # The profiled run attributes nearly all of its wall time.
        assert on["attributed_fraction"] >= 0.95


class TestAttributionOnFig08:
    def test_fig08_attribution_meets_the_gate(self):
        # The acceptance scenario: the ISP workload with real installs.
        from repro.experiments.common import canned_scenario
        from repro.obs import use_tracer
        from repro.obs.perf import profile_simulation

        tracer = RecordingTracer()
        with use_tracer(tracer):
            simulation, meta = canned_scenario("fig08")
            report = profile_simulation(simulation, tracer=tracer, meta=meta)
        assert report.attributed_fraction >= 0.95
        assert report.spans, "span stream produced no wall-clock costs"
        assert any(
            label.startswith("event:") for label in report.segments
        )


# ---------------------------------------------------------------------------
# Guarantee burn
# ---------------------------------------------------------------------------

def _breakdown(start, total, channel=0.0, span_id=None):
    tcam = max(0.0, total - channel)
    return FlowModBreakdown(
        span_id=span_id if span_id is not None else int(start * 1000),
        switch="s1",
        command="add",
        start=start,
        end=start + total,
        gatekeeper=0.0,
        queue=0.0,
        tcam=tcam,
        channel=channel,
    )


class TestGuaranteeBurn:
    def test_rejects_non_positive_guarantee(self):
        with pytest.raises(ValueError):
            guarantee_burn([], guarantee=0.0)
        with pytest.raises(ValueError):
            guarantee_burn([], guarantee=-1.0)

    def test_empty_source(self):
        report = guarantee_burn([])
        assert report.installed == 0
        assert report.violations == 0
        assert report.violation_rate == 0.0
        assert report.windows == []
        assert "0 installed FlowMods" in report.render()

    def test_compliance_split(self):
        items = [
            _breakdown(0.0, 1e-3),
            _breakdown(1.0, 4e-3),
            _breakdown(2.0, 8e-3),  # violates the 5 ms default
        ]
        report = guarantee_burn(items)
        assert report.guarantee_seconds == DEFAULT_GUARANTEE_SECONDS
        assert report.installed == 3
        assert report.compliant == 2
        assert report.violations == 1
        assert report.violation_rate == pytest.approx(1 / 3)
        assert report.burn_max == pytest.approx(8e-3 / 5e-3)

    def test_violation_windows_merge_by_gap(self):
        # Two violations 10 ms apart merge; one 2 s later stands alone.
        items = [
            _breakdown(1.000, 8e-3),
            _breakdown(1.018, 9e-3),
            _breakdown(3.000, 7e-3),
        ]
        report = guarantee_burn(items, window_gap=0.05)
        assert len(report.windows) == 2
        first, second = report.windows
        assert first.count == 2
        assert first.worst_seconds == pytest.approx(9e-3)
        assert second.count == 1
        # A tighter gap splits the burst.
        report = guarantee_burn(items, window_gap=0.005)
        assert len(report.windows) == 3

    def test_window_attributes_dominant_layer(self):
        items = [_breakdown(0.0, 8e-3, channel=6e-3)]
        report = guarantee_burn(items)
        assert report.windows[0].worst_layer == "channel"

    def test_layer_budget_attribution(self):
        items = [_breakdown(0.0, 4e-3, channel=3e-3)]
        report = guarantee_burn(items)
        channel = report.layers["channel"]
        assert channel.mean_seconds == pytest.approx(3e-3)
        assert channel.mean_budget_share == pytest.approx(3e-3 / 5e-3)
        assert channel.share_of_latency == pytest.approx(3 / 4)
        assert report.layers["gatekeeper"].mean_seconds == 0.0

    def test_accepts_raw_trace_records(self):
        # A flowmod span wrapping one agent.action: the summarizer path.
        records = [
            {
                "type": "span", "id": 2, "parent": 1, "name": "agent.action",
                "cat": "switch", "start": 0.001, "end": 0.003,
                "attrs": {"switch": "s1", "command": "add",
                          "queue_delay": 0.0, "exec_latency": 0.002},
            },
            {
                "type": "span", "id": 1, "parent": 0, "name": "flowmod",
                "cat": "channel", "start": 0.0, "end": 0.010,
                "attrs": {"attempts": 1, "delivered": True},
            },
        ]
        report = guarantee_burn(records)
        assert report.installed == 1
        item = report.worst[0]
        assert item.tcam == pytest.approx(0.002)
        assert item.channel == pytest.approx(0.008)

    def test_json_round_trip(self):
        items = [_breakdown(0.0, 8e-3)]
        payload = json.loads(json.dumps(guarantee_burn(items).to_dict()))
        assert payload["violations"] == 1
        assert payload["windows"][0]["count"] == 1
        assert payload["worst"][0]["burn"] == pytest.approx(1.6)


# ---------------------------------------------------------------------------
# The hermes-bench/1 artifact layer
# ---------------------------------------------------------------------------

class TestBenchArtifacts:
    def test_direction_inference(self):
        assert metric_direction("run_seconds") == "lower"
        assert metric_direction("peak_memory_mib") == "lower"
        assert metric_direction("dispatch_speedup") == "higher"
        assert metric_direction("events_per_s") == "higher"
        assert metric_direction("Throughput") == "higher"

    def test_artifact_shape_and_validation(self):
        document = bench_artifact("unit", {"run_seconds": 1.5})
        assert document["format"] == BENCH_FORMAT
        assert document["suite"] == "unit"
        assert document["headline"] == {"run_seconds": 1.5}
        assert set(machine_fingerprint()) <= set(document["fingerprint"])
        with pytest.raises(ValueError):
            bench_artifact("", {"run_seconds": 1.0})
        with pytest.raises(ValueError):
            bench_artifact("unit", {"ok": True})
        with pytest.raises(ValueError):
            bench_artifact("unit", {"name": "fast"})

    def test_write_load_history_index(self, tmp_path):
        results = str(tmp_path)
        path = write_bench_artifact(
            "unit", {"run_seconds": 1.5}, payload={"rows": [1, 2]},
            results_dir=results,
        )
        assert path == os.path.join(results, "BENCH_unit.json")
        document = load_artifact(path)
        assert document["payload"] == {"rows": [1, 2]}

        write_bench_artifact("unit", {"run_seconds": 1.4}, results_dir=results)
        points = read_history(results)
        assert [p["suite"] for p in points] == ["unit", "unit"]
        assert points[-1]["headline"]["run_seconds"] == 1.4

        index = open(os.path.join(results, "INDEX.md")).read()
        assert "| unit |" in index
        assert "BENCH_unit.json" in index
        assert "run_seconds=1.4" in index

    def test_index_skips_foreign_json(self, tmp_path):
        results = str(tmp_path)
        with open(os.path.join(results, "BENCH_legacy.json"), "w") as handle:
            json.dump({"format": "hermes-engine-bench/1"}, handle)
        write_index(results)
        index = open(os.path.join(results, "INDEX.md")).read()
        assert "legacy" not in index

    def test_load_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_artifact(str(path))

    def test_env_override_directs_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HERMES_BENCH_DIR", str(tmp_path))
        write_bench_artifact("unit", {"run_seconds": 1.0})
        assert (tmp_path / "BENCH_unit.json").exists()
        assert (tmp_path / "perf_history.jsonl").exists()

    def test_history_point_is_compact(self, tmp_path):
        document = bench_artifact("unit", {"run_seconds": 1.0})
        append_history(document, str(tmp_path))
        point = read_history(str(tmp_path))[0]
        assert set(point) == {
            "suite", "date", "unix_time", "commit", "cpu_count",
            "python", "headline",
        }


class TestBenchCompare:
    def _doc(self, headline, suite="unit"):
        return bench_artifact(suite, headline)

    def test_regression_lower_is_better(self):
        deltas, _ = compare(
            self._doc({"run_seconds": 1.0}), self._doc({"run_seconds": 1.5})
        )
        assert deltas[0].regressed
        deltas, _ = compare(
            self._doc({"run_seconds": 1.0}), self._doc({"run_seconds": 1.1})
        )
        assert not deltas[0].regressed

    def test_regression_higher_is_better(self):
        deltas, _ = compare(
            self._doc({"speedup": 10.0}), self._doc({"speedup": 5.0})
        )
        assert deltas[0].regressed
        deltas, _ = compare(
            self._doc({"speedup": 10.0}), self._doc({"speedup": 9.5})
        )
        assert not deltas[0].regressed

    def test_improvement_never_regresses(self):
        deltas, _ = compare(
            self._doc({"run_seconds": 1.0}), self._doc({"run_seconds": 0.2})
        )
        assert not deltas[0].regressed

    def test_one_sided_metrics_become_notes(self):
        _deltas, notes = compare(
            self._doc({"run_seconds": 1.0, "old_metric": 2.0}),
            self._doc({"run_seconds": 1.0, "new_metric": 3.0}),
        )
        assert any("old_metric" in note for note in notes)
        assert any("new_metric" in note for note in notes)

    def test_suite_mismatch_is_noted(self):
        _deltas, notes = compare(
            self._doc({"run_seconds": 1.0}, suite="a"),
            self._doc({"run_seconds": 1.0}, suite="b"),
        )
        assert any("different suites" in note for note in notes)

    def test_zero_baseline_guard(self):
        deltas, _ = compare(
            self._doc({"run_seconds": 0.0}), self._doc({"run_seconds": 0.0})
        )
        assert deltas[0].ratio == 1.0
        assert not deltas[0].regressed

    def test_threshold_validation_and_rendering(self):
        with pytest.raises(ValueError):
            compare(self._doc({"a": 1.0}), self._doc({"a": 1.0}), threshold=-1)
        delta = HeadlineDelta(
            metric="run_seconds", direction="lower",
            a=1.0, b=2.0, ratio=2.0, regressed=True,
        )
        assert "REGRESSED" in str(delta)

    def test_planted_regression_fixtures_fail_comparison(self):
        baseline = load_artifact(os.path.join(FIXTURES, "bench_baseline.json"))
        regressed = load_artifact(
            os.path.join(FIXTURES, "bench_regressed.json")
        )
        deltas, _ = compare(baseline, regressed)
        assert all(delta.regressed for delta in deltas)
        # The same pair under a huge threshold passes.
        deltas, _ = compare(baseline, regressed, threshold=5.0)
        assert not any(delta.regressed for delta in deltas)


# ---------------------------------------------------------------------------
# Flamegraph folding
# ---------------------------------------------------------------------------

class TestTraceCollapsed:
    def test_nested_spans_fold_with_self_time(self):
        records = [
            {"type": "span", "id": 1, "parent": 0, "name": "flowmod",
             "start": 0.0, "end": 0.010, "attrs": {}},
            {"type": "span", "id": 2, "parent": 1, "name": "agent.action",
             "start": 0.002, "end": 0.006, "attrs": {}},
            {"type": "event", "name": "noise", "time": 0.0, "span": 1,
             "attrs": {}},
        ]
        lines = trace_collapsed(records)
        assert "flowmod 6000" in lines  # 10 ms minus the 4 ms child
        assert "flowmod;agent.action 4000" in lines

    def test_identical_stacks_merge(self):
        records = [
            {"type": "span", "id": i, "parent": 0, "name": "flowmod",
             "start": 0.0, "end": 0.001, "attrs": {}}
            for i in (1, 2, 3)
        ]
        assert trace_collapsed(records) == ["flowmod 3000"]

    def test_zero_weight_spans_are_dropped(self):
        records = [
            {"type": "span", "id": 1, "parent": 0, "name": "instant",
             "start": 1.0, "end": 1.0, "attrs": {}},
        ]
        assert trace_collapsed(records) == []


# ---------------------------------------------------------------------------
# The perf CLI
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def perf_trace(tmp_path_factory):
    """One small traced chaos scenario written as hermes-trace/1."""
    from repro.experiments.common import canned_scenario
    from repro.obs import RecordingTracer, use_tracer, write_trace

    tracer = RecordingTracer(meta={"scenario": "perf-cli"})
    with use_tracer(tracer):
        simulation, _meta = canned_scenario("demo")
        simulation.run()
    path = tmp_path_factory.mktemp("perf-cli") / "trace.jsonl"
    write_trace(tracer, str(path))
    return str(path)


class TestPerfCli:
    def test_report_text_and_json(self, perf_trace, capsys):
        from repro.obs.__main__ import main

        assert main(["perf", "report", perf_trace]) == 0
        out = capsys.readouterr().out
        assert "guarantee-burn ledger" in out

        assert main(["perf", "report", perf_trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "violation_rate" in payload
        assert set(payload["layers"]) == {
            "gatekeeper", "queue", "tcam", "channel",
        }

    def test_flamegraph_to_file(self, perf_trace, tmp_path, capsys):
        from repro.obs.__main__ import main

        out = tmp_path / "flame.folded"
        assert main(["perf", "flamegraph", perf_trace, "--out", str(out)]) == 0
        capsys.readouterr()
        for line in out.read_text().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack
            assert int(weight) > 0

    def test_bench_compare_exit_codes(self, capsys):
        from repro.obs.__main__ import main

        baseline = os.path.join(FIXTURES, "bench_baseline.json")
        regressed = os.path.join(FIXTURES, "bench_regressed.json")
        assert main(["perf", "bench-compare", baseline, baseline]) == 0
        assert "ok:" in capsys.readouterr().out
        # The planted regression must fail the gate.
        assert main(["perf", "bench-compare", baseline, regressed]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # ...and pass under an explicitly huge threshold.
        assert main(
            ["perf", "bench-compare", baseline, regressed,
             "--threshold", "5.0"]
        ) == 0

    def test_index_command(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        with open(tmp_path / "BENCH_unit.json", "w") as handle:
            json.dump(bench_artifact("unit", {"run_seconds": 1.0}), handle)
        assert main(["perf", "index", str(tmp_path)]) == 0
        capsys.readouterr()
        assert "| unit |" in (tmp_path / "INDEX.md").read_text()
