"""Tests for ``python -m repro.obs``: scenario export and trace round-trip."""

import os

import pytest

from repro.obs.__main__ import main


@pytest.fixture(scope="module")
def scenario_dir(tmp_path_factory):
    """One small traced scenario, exported in all three formats."""
    out_dir = tmp_path_factory.mktemp("obs-scenario")
    code = main(
        [
            "scenario",
            "--out-dir", str(out_dir),
            "--jobs", "3",
            "--max-time", "2.0",
            "--drop", "0.1",
        ]
    )
    assert code == 0
    return out_dir


class TestScenario:
    def test_exports_all_three_formats(self, scenario_dir):
        for name in ("trace.jsonl", "trace.chrome.json", "metrics.prom"):
            path = os.path.join(str(scenario_dir), name)
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0

    def test_chrome_export_is_valid_json(self, scenario_dir):
        import json

        with open(os.path.join(str(scenario_dir), "trace.chrome.json")) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]

    def test_prometheus_export_has_core_series(self, scenario_dir):
        with open(os.path.join(str(scenario_dir), "metrics.prom")) as handle:
            text = handle.read()
        assert "hermes_agent_actions_total" in text
        assert "hermes_rit_seconds_bucket" in text


class TestSummaryCli:
    def test_summary_round_trips_the_trace(self, scenario_dir, capsys):
        trace = os.path.join(str(scenario_dir), "trace.jsonl")
        assert main(["summary", trace, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "hermes-trace/1" in out
        for stage in ("gatekeeper", "queue", "tcam", "channel"):
            assert stage in out
        assert "installed FlowMods" in out

    def test_per_flowmod_listing(self, scenario_dir, capsys):
        trace = os.path.join(str(scenario_dir), "trace.jsonl")
        assert main(["summary", trace, "--per-flowmod"]) == 0
        assert "per-FlowMod breakdown" in capsys.readouterr().out

    def test_diff_of_trace_with_itself(self, scenario_dir, capsys):
        trace = os.path.join(str(scenario_dir), "trace.jsonl")
        assert main(["diff", trace, trace]) == 0
        out = capsys.readouterr().out
        assert "installed FlowMods" in out

    def test_summary_rejects_non_trace_file(self, tmp_path):
        bogus = tmp_path / "not-a-trace.jsonl"
        bogus.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            main(["summary", str(bogus)])
