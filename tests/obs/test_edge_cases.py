"""Edge cases across ``repro.obs``: empty traces, orphans, Prometheus.

Observability code runs on whatever a scenario happened to emit — an
aborted run's empty trace, a crashed layer's orphaned spans — so the
summarizer, exporters, and flamegraph folder must degrade to sensible
output instead of raising.  The Prometheus exporter is checked against a
minimal text-format parser rather than string spot-checks: every sample
must belong to a declared metric family, and histograms must satisfy the
cumulative-bucket contract scrapers rely on.
"""

import json

import pytest

from repro.obs import (
    RecordingTracer,
    chrome_trace,
    parse_trace_lines,
    trace_lines,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf.flame import trace_collapsed
from repro.obs.summary import flowmod_breakdowns, render_summary, summarize


class TestEmptyTrace:
    def test_summarize_an_empty_recording(self):
        tracer = RecordingTracer(meta={"scenario": "aborted"})
        header, records = parse_trace_lines(trace_lines(tracer))
        summary = summarize(header, records)
        assert summary.breakdowns == []
        assert summary.record_counts == {}
        assert summary.span_range == (0.0, 0.0)
        text = render_summary(summary)
        assert "0 installed FlowMods" in text

    def test_exporters_on_an_empty_recording(self):
        tracer = RecordingTracer()
        payload = chrome_trace(tracer.records)
        # Only thread-name metadata events; no spans, counters, instants.
        assert all(event["ph"] == "M" for event in payload["traceEvents"])
        assert trace_collapsed(tracer.records) == []
        assert tracer.metrics.prometheus_text() == ""

    def test_trace_lines_still_carry_the_header(self):
        tracer = RecordingTracer(meta={"k": "v"})
        lines = trace_lines(tracer)
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["format"] == "hermes-trace/1"
        assert header["meta"] == {"k": "v"}


class TestOrphanedSpans:
    def test_flowmod_without_actions_is_not_installed(self):
        # An undelivered send: the flowmod span closed but no agent ran.
        records = [
            {"type": "span", "id": 1, "parent": 0, "name": "flowmod",
             "start": 0.0, "end": 0.01,
             "attrs": {"attempts": 3, "delivered": False}},
        ]
        assert flowmod_breakdowns(records) == []

    def test_action_whose_parent_never_finished(self):
        # The enclosing flowmod span is missing from the stream (still
        # open at shutdown): the action must surface channel-less rather
        # than vanish.
        records = [
            {"type": "span", "id": 7, "parent": 3, "name": "agent.action",
             "start": 0.0, "end": 0.002,
             "attrs": {"switch": "s1", "command": "add"}},
        ]
        items = flowmod_breakdowns(records)
        assert len(items) == 1
        assert items[0].channel == 0.0
        assert items[0].tcam == pytest.approx(0.002)

    def test_orphaned_span_roots_its_own_flame_stack(self):
        records = [
            {"type": "span", "id": 7, "parent": 3, "name": "agent.action",
             "start": 0.0, "end": 0.002, "attrs": {}},
        ]
        assert trace_collapsed(records) == ["agent.action 2000"]

    def test_open_spans_do_not_emit_records(self):
        tracer = RecordingTracer()
        tracer.start_span("flowmod", 0.0)
        assert tracer.records == []
        assert len(tracer.open_spans()) == 1
        summary = summarize({}, tracer.records)
        assert summary.breakdowns == []


# ---------------------------------------------------------------------------
# Prometheus text-format conformance
# ---------------------------------------------------------------------------

def _parse_prometheus(text):
    """Minimal text-format parser: (families, samples).

    families: name -> type from ``# TYPE`` lines.
    samples: list of (metric_name, labels_dict, value).
    """
    families = {}
    samples = []
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            families[name] = kind
            continue
        if line.startswith("#"):
            continue
        body, _, value = line.rpartition(" ")
        labels = {}
        name = body
        if "{" in body:
            name, _, label_body = body.partition("{")
            assert label_body.endswith("}")
            for part in label_body[:-1].split(","):
                key, _, raw = part.partition("=")
                assert raw.startswith('"') and raw.endswith('"')
                labels[key] = raw[1:-1]
        samples.append((name, labels, float(value)))
    return families, samples


def _family_of(sample_name, families):
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base in families and families[base] == "histogram":
            return base
    return sample_name if sample_name in families else None


@pytest.fixture()
def folded_registry():
    """A registry filled through the real record→metric fold."""
    tracer = RecordingTracer()
    span = tracer.start_span("flowmod", 0.0, attempts=2, delivered=True)
    action = tracer.start_span(
        "agent.action", 0.001, switch="s1", command="add",
        queue_delay=0.0005, exec_latency=0.001, shifts=3,
    )
    action.finish(0.003)
    span.finish(0.004)
    tracer.event("hermes.gatekeeper", 0.001, reason="guarantee")
    tracer.event("channel.timeout", 0.002)
    tracer.sample("tcam.occupancy", 0.004, 17.0, switch="s1")
    return tracer.metrics


class TestPrometheusConformance:
    def test_every_sample_belongs_to_a_declared_family(self, folded_registry):
        families, samples = _parse_prometheus(
            folded_registry.prometheus_text()
        )
        assert samples
        for name, _labels, _value in samples:
            assert _family_of(name, families) is not None, name

    def test_counter_names_end_in_total(self, folded_registry):
        families, _ = _parse_prometheus(folded_registry.prometheus_text())
        for name, kind in families.items():
            if kind == "counter":
                assert name.endswith("_total"), name

    def test_histogram_buckets_are_cumulative_with_inf(self, folded_registry):
        families, samples = _parse_prometheus(
            folded_registry.prometheus_text()
        )
        histograms = [n for n, k in families.items() if k == "histogram"]
        assert histograms
        for base in histograms:
            buckets = [
                (labels["le"], value)
                for name, labels, value in samples
                if name == f"{base}_bucket"
            ]
            assert buckets[-1][0] == "+Inf"
            counts = [value for _le, value in buckets]
            assert counts == sorted(counts)
            count = next(
                value for name, _l, value in samples
                if name == f"{base}_count"
            )
            assert counts[-1] == count

    def test_label_values_render_quoted(self, folded_registry):
        _families, samples = _parse_prometheus(
            folded_registry.prometheus_text()
        )
        gauge = [
            (labels, value)
            for name, labels, value in samples
            if name == "tcam_occupancy"
        ]
        assert gauge == [({"switch": "s1"}, 17.0)]

    def test_hand_built_registry_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", help="a demo counter").inc(2, kind="x")
        registry.gauge("demo_level").set(1.5)
        registry.histogram("demo_seconds", buckets=(0.1, 1.0)).observe(0.5)
        families, samples = _parse_prometheus(registry.prometheus_text())
        assert families == {
            "demo_total": "counter",
            "demo_level": "gauge",
            "demo_seconds": "histogram",
        }
        assert ("demo_total", {"kind": "x"}, 2.0) in samples
        assert ("demo_level", {}, 1.5) in samples
