"""The tentpole's determinism guarantees, checked cross-process.

Two properties, each requiring fresh interpreters (rule ids come from a
process-global counter, so in-process comparisons prove nothing):

* **golden trace** — the same fixed-seed scenario, traced in two separate
  processes, produces byte-identical JSONL (span ids are per-tracer, trace
  timestamps are sim time, exports sort keys).
* **no-op parity** — running the same scenario with and without a
  recording tracer produces byte-identical *result* digests: the
  instrumentation only records, it never perturbs.
"""

import hashlib
import os
import subprocess
import sys

_COMMON = r"""
import hashlib, json, sys
import numpy as np
from repro.baselines import make_installer
from repro.experiments.common import default_hermes_config
from repro.faults import FaultInjector, FaultPlan, FlowModFault
from repro.obs import RecordingTracer, trace_lines, use_tracer
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.switchsim import ChannelConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs

mode = sys.argv[1]
graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
flows = flows_of(
    generate_jobs(
        hosts(graph), job_count=4, arrival_rate=6.0, rng=np.random.default_rng(13)
    )
)
plan = FaultPlan(flowmod=FlowModFault(drop=0.1, ack_loss_fraction=0.3))
injector = FaultInjector(plan=plan, seed=13)
config = SimulationConfig(
    te=TeAppConfig(epoch=0.25),
    baseline_occupancy=200,
    max_time=2.5,
    channel="resilient",
    channel_config=ChannelConfig(),
    fault_plan=plan,
    fault_seed=13,
)
timing = get_switch_model("pica8-p3290")
hermes_config = default_hermes_config()
factory = lambda name: make_installer(
    "hermes", timing, hermes_config=hermes_config, injector=injector
)

if mode == "untraced":
    simulation = Simulation(graph, flows, factory, config, injector=injector)
    metrics = simulation.run()
    tracer = None
else:
    tracer = RecordingTracer(meta={"scenario": "determinism"})
    with use_tracer(tracer):
        simulation = Simulation(graph, flows, factory, config, injector=injector)
        metrics = simulation.run()

result_payload = json.dumps(
    [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
).encode()
print(hashlib.sha256(result_payload).hexdigest())
if tracer is not None:
    trace_payload = "\n".join(trace_lines(tracer)).encode()
    print(hashlib.sha256(trace_payload).hexdigest())
"""


def _run(mode: str):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, "-c", _COMMON, mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.split()


class TestGoldenTrace:
    def test_trace_is_identical_across_processes(self):
        first = _run("traced")
        second = _run("traced")
        assert first[1] == second[1]  # byte-identical JSONL trace
        assert first[0] == second[0]  # and identical results, of course

    def test_trace_digest_is_not_degenerate(self):
        # Guard against the trivial way to pass the test above: an empty
        # trace.  The digest must differ from the empty-string digest.
        digest = _run("traced")[1]
        assert digest != hashlib.sha256(b"").hexdigest()


class TestNoOpParity:
    def test_recording_tracer_does_not_perturb_results(self):
        untraced = _run("untraced")[0]
        traced = _run("traced")[0]
        assert untraced == traced
