"""Tests for the exporters and the trace summarizer.

One synthetic trace, built through the real RecordingTracer, exercises the
whole read side: JSONL round-trip, Chrome conversion, per-stage breakdown
arithmetic, and the rendered reports.
"""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    parse_trace_lines,
    read_trace,
    trace_lines,
    write_trace,
)
from repro.obs.summary import (
    flowmod_breakdowns,
    percentile,
    render_diff,
    render_summary,
    summarize,
)
from repro.obs.tracer import TRACE_FORMAT, RecordingTracer


def build_trace() -> RecordingTracer:
    """One FlowMod through a channel, plus gauges: known stage values.

    flowmod span: 0.000 -> 0.005 (5 ms), action window 0.002 -> 0.004
    (2 ms) => channel = 3 ms.  queue_delay = 1 ms, exec_latency = 2 ms,
    gatekeeper latency = 0.2 ms => tcam = 1.8 ms.
    """
    tracer = RecordingTracer(meta={"scenario": "unit"})
    flowmod = tracer.start_span(
        "flowmod", start=0.0, category="channel", kind="single", switch="s1"
    )
    action = tracer.start_span(
        "agent.action", start=0.002, category="agent", switch="s1", command="add"
    )
    tracer.event(
        "hermes.gatekeeper", time=0.002, category="hermes",
        reason="admitted", use_shadow=True, latency=0.0002,
    )
    action.finish(end=0.004, queue_delay=0.001, exec_latency=0.002, shifts=3)
    flowmod.finish(end=0.005, delivered=True, attempts=2)
    tracer.sample("shadow.occupancy", time=0.004, value=10.0, switch="s1")
    tracer.sample("shadow.occupancy", time=0.005, value=12.0, switch="s1")
    return tracer


class TestJsonl:
    def test_round_trip(self):
        tracer = build_trace()
        header, records = parse_trace_lines(trace_lines(tracer))
        assert header["format"] == TRACE_FORMAT
        assert header["meta"] == {"scenario": "unit"}
        assert header["records"] == len(records) == len(tracer.records)
        assert records == json.loads(json.dumps(tracer.records))

    def test_file_round_trip(self, tmp_path):
        tracer = build_trace()
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, str(path))
        header, records = read_trace(str(path))
        assert header["records"] == len(records)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty trace"):
            parse_trace_lines([])

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format tag"):
            parse_trace_lines(['{"format": "other/9"}'])

    def test_malformed_record_rejected(self):
        lines = trace_lines(build_trace())[:1] + ['{"no": "type"}']
        with pytest.raises(ValueError, match="line 2"):
            parse_trace_lines(lines)


class TestChromeTrace:
    def test_record_kinds_map_to_phases(self):
        payload = chrome_trace(build_trace().records, meta={"x": 1})
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert "X" in phases and "i" in phases and "C" in phases
        assert payload["otherData"] == {"x": 1}

    def test_switch_records_get_their_own_thread(self):
        payload = chrome_trace(build_trace().records)
        threads = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert threads == {"controller", "s1"}

    def test_span_durations_in_microseconds(self):
        payload = chrome_trace(build_trace().records)
        flowmod = next(
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "flowmod"
        )
        assert flowmod["dur"] == pytest.approx(5000.0)


class TestBreakdowns:
    def test_stage_attribution(self):
        breakdowns = flowmod_breakdowns(build_trace().records)
        assert len(breakdowns) == 1
        item = breakdowns[0]
        assert item.gatekeeper == pytest.approx(0.0002)
        assert item.queue == pytest.approx(0.001)
        assert item.tcam == pytest.approx(0.0018)
        assert item.channel == pytest.approx(0.003)
        assert item.attempts == 2
        assert item.shifts == 3
        assert item.switch == "s1"

    def test_direct_submit_has_zero_channel(self):
        tracer = RecordingTracer()
        tracer.start_span(
            "agent.action", start=0.0, switch="s1", command="add"
        ).finish(end=0.002, queue_delay=0.0, exec_latency=0.002)
        breakdowns = flowmod_breakdowns(tracer.records)
        assert len(breakdowns) == 1
        assert breakdowns[0].channel == 0.0

    def test_undelivered_flowmods_excluded(self):
        tracer = RecordingTracer()
        tracer.start_span("flowmod", start=0.0, switch="s1").finish(
            end=0.001, delivered=False, attempts=1
        )
        assert flowmod_breakdowns(tracer.records) == []


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0


class TestRendering:
    def test_summary_report_contains_stages_and_gauges(self):
        tracer = build_trace()
        summary = summarize({"format": TRACE_FORMAT, "meta": tracer.meta},
                            tracer.records)
        rendered = render_summary(summary, top=3, per_flowmod=True)
        for stage in ("gatekeeper", "queue", "tcam", "channel", "total"):
            assert stage in rendered
        assert "shadow.occupancy[switch=s1]" in rendered
        assert "hermes.gatekeeper" in rendered

    def test_diff_report_runs(self):
        tracer = build_trace()
        summary = summarize({"format": TRACE_FORMAT}, tracer.records)
        rendered = render_diff(summary, summary, "a.jsonl", "b.jsonl")
        assert "Δp50" in rendered or "p50" in rendered
        assert "a.jsonl" in rendered and "b.jsonl" in rendered
