"""Tests for the tracing core: spans, events, samples, folding, globals."""

from repro.obs.tracer import (
    NULL_SPAN,
    RecordingTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestNoOpTracer:
    def test_global_default_is_disabled(self):
        assert isinstance(get_tracer(), Tracer)
        assert not get_tracer().enabled

    def test_null_span_absorbs_everything(self):
        tracer = Tracer()
        span = tracer.start_span("x", start=0.0)
        assert span is NULL_SPAN
        assert span.annotate(foo=1) is span
        span.finish(end=1.0, bar=2)  # no-op, no error
        assert tracer.event("e", time=0.0) is None
        assert tracer.sample("g", time=0.0, value=1.0) is None

    def test_use_tracer_installs_and_restores(self):
        previous = get_tracer()
        recording = RecordingTracer()
        with use_tracer(recording):
            assert get_tracer() is recording
        assert get_tracer() is previous

    def test_set_tracer_returns_previous(self):
        recording = RecordingTracer()
        previous = set_tracer(recording)
        try:
            assert get_tracer() is recording
        finally:
            set_tracer(previous)


class TestRecordingSpans:
    def test_span_ids_start_at_one_and_increment(self):
        tracer = RecordingTracer()
        a = tracer.start_span("a", start=0.0)
        b = tracer.start_span("b", start=0.1)
        assert (a.span_id, b.span_id) == (1, 2)

    def test_nesting_assigns_parents(self):
        tracer = RecordingTracer()
        outer = tracer.start_span("outer", start=0.0)
        inner = tracer.start_span("inner", start=0.1)
        assert inner.parent_id == outer.span_id
        inner.finish(end=0.2)
        outer.finish(end=0.3)
        records = tracer.records
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent"] == outer.span_id
        assert records[1]["parent"] == 0

    def test_finish_is_idempotent(self):
        tracer = RecordingTracer()
        span = tracer.start_span("x", start=0.0)
        span.finish(end=1.0)
        span.finish(end=2.0)
        assert len(tracer.records) == 1
        assert tracer.records[0]["end"] == 1.0

    def test_out_of_order_finish(self):
        tracer = RecordingTracer()
        outer = tracer.start_span("outer", start=0.0)
        inner = tracer.start_span("inner", start=0.1)
        outer.finish(end=0.3)  # error path: outer closes first
        inner.finish(end=0.2)
        assert not tracer.open_spans()
        assert {r["name"] for r in tracer.records} == {"outer", "inner"}

    def test_event_attaches_to_innermost_open_span(self):
        tracer = RecordingTracer()
        span = tracer.start_span("x", start=0.0)
        tracer.event("verdict", time=0.05, reason="ok")
        span.finish(end=0.1)
        event = next(r for r in tracer.records if r["type"] == "event")
        assert event["span"] == span.span_id
        assert event["attrs"]["reason"] == "ok"

    def test_annotate_merges_attrs(self):
        tracer = RecordingTracer()
        span = tracer.start_span("x", start=0.0, a=1)
        span.annotate(b=2)
        span.finish(end=1.0, c=3)
        assert tracer.records[0]["attrs"] == {"a": 1, "b": 2, "c": 3}


class TestSampleDedup:
    def test_consecutive_identical_readings_collapse(self):
        tracer = RecordingTracer()
        tracer.sample("occ", time=0.0, value=5.0, switch="s1")
        tracer.sample("occ", time=1.0, value=5.0, switch="s1")
        tracer.sample("occ", time=2.0, value=6.0, switch="s1")
        assert len(tracer.records) == 2

    def test_series_are_per_attrs(self):
        # Two switches alternating readings must not collapse each other.
        tracer = RecordingTracer()
        tracer.sample("occ", time=0.0, value=5.0, switch="s1")
        tracer.sample("occ", time=0.1, value=5.0, switch="s2")
        tracer.sample("occ", time=0.2, value=5.0, switch="s1")
        assert len(tracer.records) == 2


class TestListeners:
    def test_listener_sees_every_record(self):
        tracer = RecordingTracer()
        seen = []
        tracer.add_listener(seen.append)
        tracer.event("e", time=0.0)
        tracer.start_span("s", start=0.0).finish(end=1.0)
        assert [r["type"] for r in seen] == ["event", "span"]


class TestMetricFolding:
    def test_agent_action_folds_counters_and_histograms(self):
        tracer = RecordingTracer()
        tracer.start_span(
            "agent.action", start=0.0, switch="s1", command="add"
        ).finish(
            end=0.003, queue_delay=0.001, exec_latency=0.002, shifts=4,
            guaranteed=True,
        )
        registry = tracer.metrics
        assert registry.counter("hermes_agent_actions_total").value(command="add") == 1
        assert registry.counter("hermes_tcam_shifts_total").total() == 4
        assert registry.counter("hermes_guaranteed_actions_total").total() == 1
        assert registry.histogram("hermes_rit_seconds").count == 1

    def test_fault_retry_event_feeds_retry_counter(self):
        tracer = RecordingTracer()
        tracer.event("fault.retry", time=0.0, switch="s1")
        tracer.event("fault.flowmod-drop", time=0.1, switch="s1")
        registry = tracer.metrics
        assert registry.counter("hermes_channel_retries_total").total() == 1
        assert (
            registry.counter("hermes_fault_events_total").value(kind="flowmod-drop")
            == 1
        )

    def test_sample_folds_to_sanitized_gauge(self):
        tracer = RecordingTracer()
        tracer.sample("shadow.occupancy", time=0.0, value=12.0, switch="s1")
        gauge = tracer.metrics.gauge("shadow_occupancy")
        assert gauge.value(switch="s1") == 12.0

    def test_gatekeeper_event_counts_by_reason(self):
        tracer = RecordingTracer()
        tracer.event("hermes.gatekeeper", time=0.0, reason="admitted")
        assert (
            tracer.metrics.counter("hermes_gatekeeper_decisions_total").value(
                reason="admitted"
            )
            == 1
        )
