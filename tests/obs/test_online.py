"""Tests for the online verification hook riding the tracer stream."""

import pytest

from repro.obs.online import OnlineVerifier
from repro.obs.tracer import RecordingTracer
from repro.tcam.rule import Action, Rule


class CleanInstaller:
    """A monolithic installer snapshot with nothing wrong."""

    def tables(self):
        return {
            "monolithic": [
                Rule.from_prefix("10.0.0.0/24", 10, Action.output(1)),
                Rule.from_prefix("10.0.1.0/24", 11, Action.output(2)),
            ]
        }


class InvertedInstaller:
    """A shadow/main pair with a priority inversion (Figure 4(b))."""

    def tables(self):
        return {
            "shadow": [Rule.from_prefix("10.0.0.0/24", 5, Action.output(1))],
            "main": [Rule.from_prefix("10.0.0.0/24", 50, Action.output(2))],
        }


def emit_actions(tracer, switch, count, start=0.0):
    for index in range(count):
        tracer.start_span(
            "agent.action", start=start + index, switch=switch, command="add"
        ).finish(end=start + index + 0.5)


class TestOnlineVerifier:
    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            OnlineVerifier({}, every=0)

    def test_sampling_cadence(self):
        tracer = RecordingTracer()
        verifier = OnlineVerifier({"s1": CleanInstaller()}, every=3).attach(tracer)
        emit_actions(tracer, "s1", 10)
        assert verifier.checks_run == 3  # after actions 3, 6, 9
        assert verifier.violations_found == 0
        assert verifier.first_violation is None

    def test_counts_are_per_switch(self):
        tracer = RecordingTracer()
        verifier = OnlineVerifier(
            {"s1": CleanInstaller(), "s2": CleanInstaller()}, every=2
        ).attach(tracer)
        emit_actions(tracer, "s1", 2)
        emit_actions(tracer, "s2", 1)
        assert verifier.checks_run == 1  # s2 has not reached its period yet

    def test_catches_violation_with_first_instant(self):
        tracer = RecordingTracer()
        verifier = OnlineVerifier({"s1": InvertedInstaller()}, every=1).attach(tracer)
        emit_actions(tracer, "s1", 2)
        assert verifier.checks_run == 2
        assert verifier.violations_found > 0
        assert verifier.first_violation is not None
        # The first violating sim-instant is the end of the first action.
        assert verifier.first_violation["time"] == 0.5
        assert verifier.first_violation["switch"] == "s1"
        assert verifier.first_violation["kinds"]
        assert verifier.violation_times() == [0.5]

    def test_ignores_unknown_switches_and_other_records(self):
        tracer = RecordingTracer()
        verifier = OnlineVerifier({"s1": CleanInstaller()}, every=1).attach(tracer)
        emit_actions(tracer, "elsewhere", 3)
        tracer.event("fault.retry", time=0.0, switch="s1")
        tracer.sample("occ", time=0.0, value=1.0, switch="s1")
        assert verifier.checks_run == 0

    def test_report_shape(self):
        verifier = OnlineVerifier({"s1": CleanInstaller()})
        assert verifier.report() == {
            "checks_run": 0,
            "violations_found": 0,
            "first_violation": None,
        }
