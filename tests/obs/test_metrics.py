"""Tests for the metrics registry: counters, gauges, histograms, exports."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        assert counter.total() == 3

    def test_labelled_series_are_independent(self):
        counter = Counter("actions_total")
        counter.inc(command="add")
        counter.inc(command="add")
        counter.inc(command="delete")
        assert counter.value(command="add") == 2
        assert counter.value(command="delete") == 1
        assert counter.value(command="modify") == 0
        assert counter.total() == 3

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_prometheus_lines_sorted(self):
        counter = Counter("c_total", help="help text")
        counter.inc(kind="b")
        counter.inc(kind="a")
        lines = counter.prometheus_lines()
        assert lines[0] == "# HELP c_total help text"
        assert lines[1] == "# TYPE c_total counter"
        assert lines.index('c_total{kind="a"} 1') < lines.index('c_total{kind="b"} 1')


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("occupancy")
        gauge.set(10)
        gauge.set(7)
        assert gauge.value() == 7

    def test_gauge_may_decrease_via_inc(self):
        gauge = Gauge("tokens")
        gauge.inc(5)
        gauge.inc(-2)
        assert gauge.value() == 3


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        counts = dict(hist.bucket_counts())
        assert counts[0.1] == 1
        assert counts[1.0] == 2  # cumulative
        assert counts[float("inf")] == 3

    def test_non_ascending_buckets_raise(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))

    def test_quantile_is_deterministic(self):
        hist = Histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        for value in (0.0002, 0.0002, 0.002, 0.02):
            hist.observe(value)
        assert hist.quantile(0.5) <= hist.quantile(0.99)

    def test_prometheus_has_inf_bucket_and_sum(self):
        hist = Histogram("lat", buckets=(0.1,))
        hist.observe(0.05)
        rendered = "\n".join(hist.prometheus_lines())
        assert 'lat_bucket{le="+Inf"} 1' in rendered
        assert "lat_sum" in rendered and "lat_count 1" in rendered

    def test_as_dict_handles_inf_boundary(self):
        hist = Histogram("lat", buckets=(0.1,))
        hist.observe(0.5)
        assert hist.as_dict()  # must not raise on the +Inf boundary


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_prometheus_text_is_insertion_order_independent(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("b_total").inc()
        first.gauge("a_gauge").set(2)
        second.gauge("a_gauge").set(2)
        second.counter("b_total").inc()
        assert first.prometheus_text() == second.prometheus_text()

    def test_as_dict_round_trips_through_json(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(kind="x")
        registry.histogram("h", buckets=(0.1,)).observe(1.0)
        assert json.loads(json.dumps(registry.as_dict())) == json.loads(
            json.dumps(registry.as_dict())
        )
