"""Tests for the BGP substrate: RIB decision process, FIB compilation, streams."""

import numpy as np
import pytest

from repro.bgp import (
    BgpRoute,
    BgpRouter,
    BgpUpdate,
    BgpUpdateKind,
    ROUTER_PROFILES,
    Rib,
    generate_updates,
    get_router_profile,
    update_rate_series,
)
from repro.switchsim import FlowModCommand
from repro.tcam import Prefix


def P(text):
    return Prefix.from_string(text)


def route(prefix, peer, as_path=(100, 200), local_pref=100, med=0, next_hop=1):
    return BgpRoute(
        prefix=P(prefix),
        peer=peer,
        as_path=tuple(as_path),
        next_hop=next_hop,
        local_pref=local_pref,
        med=med,
    )


class TestDecisionProcess:
    def test_local_pref_dominates(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", local_pref=100)))
        change = rib.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=200))
        )
        assert change.changed
        assert change.current.peer == "b"

    def test_shorter_as_path_wins(self):
        rib = Rib()
        rib.process(
            BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", as_path=(1, 2, 3)))
        )
        change = rib.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", as_path=(1, 2)))
        )
        assert change.current.peer == "b"

    def test_lower_med_wins(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", med=50)))
        change = rib.process(BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", med=10)))
        assert change.current.peer == "b"

    def test_worse_route_does_not_change_best(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", local_pref=200)))
        change = rib.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=50))
        )
        assert not change.changed

    def test_withdraw_falls_back_to_next_best(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", local_pref=200)))
        rib.process(BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=100)))
        change = rib.process(BgpUpdate.withdraw(2.0, "a", P("10.0.0.0/8")))
        assert change.changed
        assert change.current.peer == "b"

    def test_withdraw_last_route_empties_prefix(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        change = rib.process(BgpUpdate.withdraw(1.0, "a", P("10.0.0.0/8")))
        assert change.current is None
        assert rib.prefix_count() == 0

    def test_withdraw_unknown_is_noop(self):
        rib = Rib()
        change = rib.process(BgpUpdate.withdraw(0.0, "a", P("10.0.0.0/8")))
        assert not change.changed

    def test_route_counts(self):
        rib = Rib()
        rib.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        rib.process(BgpUpdate.announce(1.0, route("10.0.0.0/8", "b")))
        rib.process(BgpUpdate.announce(2.0, route("11.0.0.0/8", "a")))
        assert rib.route_count() == 3
        assert rib.prefix_count() == 2


class TestFibCompilation:
    def make_router(self):
        return BgpRouter(port_of_peer={"a": 1, "b": 2, "c": 3})

    def test_new_prefix_becomes_add(self):
        router = self.make_router()
        mods = router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        assert len(mods) == 1
        assert mods[0].command is FlowModCommand.ADD
        assert mods[0].rule.action.port == 1
        # LPM encoding: priority equals prefix length.
        assert mods[0].rule.priority == 8

    def test_next_hop_change_becomes_modify(self):
        router = self.make_router()
        router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        mods = router.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=200))
        )
        assert len(mods) == 1
        assert mods[0].command is FlowModCommand.MODIFY
        assert mods[0].new_action.port == 2

    def test_full_withdraw_becomes_delete(self):
        router = self.make_router()
        router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        mods = router.process(BgpUpdate.withdraw(1.0, "a", P("10.0.0.0/8")))
        assert len(mods) == 1
        assert mods[0].command is FlowModCommand.DELETE

    def test_rib_only_churn_is_suppressed(self):
        router = self.make_router()
        router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", local_pref=200)))
        mods = router.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=50))
        )
        assert mods == []
        assert router.fib.stats.suppressed == 1

    def test_same_port_best_path_change_is_suppressed(self):
        router = self.make_router()
        router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a", as_path=(1, 2, 3))))
        # Better route from the same peer: best path changes but the port
        # does not, so the data plane needs no update.
        mods = router.process(
            BgpUpdate.announce(1.0, route("10.0.0.0/8", "a", as_path=(1, 2)))
        )
        assert mods == []

    def test_stats_accounting(self):
        router = self.make_router()
        router.process(BgpUpdate.announce(0.0, route("10.0.0.0/8", "a")))
        router.process(BgpUpdate.announce(1.0, route("10.0.0.0/8", "b", local_pref=200)))
        router.process(BgpUpdate.withdraw(2.0, "b", P("10.0.0.0/8")))
        stats = router.fib.stats
        assert stats.adds == 1
        assert stats.modifies == 2  # b takes over, then falls back to a
        assert stats.fib_actions == 3


class TestUpdateValidation:
    def test_announce_requires_route(self):
        with pytest.raises(ValueError):
            BgpUpdate(time=0.0, kind=BgpUpdateKind.ANNOUNCE, peer="a", prefix=P("10.0.0.0/8"))

    def test_route_attributes_must_agree(self):
        with pytest.raises(ValueError):
            BgpUpdate(
                time=0.0,
                kind=BgpUpdateKind.ANNOUNCE,
                peer="b",
                prefix=P("10.0.0.0/8"),
                route=route("10.0.0.0/8", "a"),
            )

    def test_empty_as_path_rejected(self):
        with pytest.raises(ValueError):
            route("10.0.0.0/8", "a", as_path=())


class TestStreams:
    def test_profiles_exist(self):
        assert set(ROUTER_PROFILES) == {
            "equinix-chicago",
            "telxatl",
            "nwax",
            "uoregon",
        }
        with pytest.raises(KeyError):
            get_router_profile("rrc00")

    def test_stream_sorted_and_bounded(self):
        profile = get_router_profile("nwax")
        updates = generate_updates(profile, duration=10.0, rng=np.random.default_rng(0))
        times = [update.time for update in updates]
        assert times == sorted(times)
        assert all(0 <= t < 10.0 for t in times)

    def test_low_median_high_tail(self):
        # The Section 2.3 shape: low update rates except a >1000/s tail.
        profile = get_router_profile("equinix-chicago")
        updates = generate_updates(profile, duration=60.0, rng=np.random.default_rng(1))
        rates = [rate for _, rate in update_rate_series(updates)]
        assert np.median(rates) < 200
        assert max(rates) > 1000

    def test_stream_feeds_router(self):
        profile = get_router_profile("uoregon")
        updates = generate_updates(profile, duration=5.0, rng=np.random.default_rng(2))
        router = BgpRouter()
        total_mods = sum(len(router.process(update)) for update in updates)
        assert 0 < total_mods <= len(updates)
        assert router.fib.entry_count() == router.rib.prefix_count()

    def test_rate_series_validation(self):
        with pytest.raises(ValueError):
            update_rate_series([], bin_seconds=0)
        assert update_rate_series([]) == []

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            generate_updates(get_router_profile("nwax"), duration=0.0)
