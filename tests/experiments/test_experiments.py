"""Tests for the experiment harness (registry, fast experiments, helpers).

The heavyweight simulation experiments are exercised by the benchmarks;
here we test the registry, the fast experiments end-to-end, and the shared
helpers with tiny parameters.
"""

import pytest

from repro.analysis import ExperimentResult
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import (
    ablation,
    bgp_section,
    fig11_timeseries,
    fig12_simple,
    fig13_slack,
    fig14_overhead,
    fig15_cpu,
    table1,
)
from repro.experiments.common import (
    QUICK_SCALE,
    WorkloadScale,
    facebook_workload,
    installer_factory,
    isp_workload,
    replay_trace,
)
from repro.traffic import MicrobenchConfig, generate_trace, seed_rules


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "table1",
            "fig1",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "bgp",
            "sensitivity",
            "ablation",
            "autotune",
            "failover",
            "chaos",
        }
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFastExperiments:
    def test_table1(self):
        result = table1.run(table1.Table1Config(probe_inserts=3))
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 8
        assert all(0.9 < row[4] < 1.1 for row in result.rows)

    def test_fig14(self):
        result = fig14_overhead.run()
        assert len(result.rows) == 9
        overheads = result.column("overhead (%)")
        assert all(0 < value <= 100 for value in overheads)

    def test_fig15_shapes(self):
        result = fig15_cpu.run(fig15_cpu.Fig15Config(rule_counts=(50, 200)))
        migration = result.column("migration (ms total)")
        assert migration[1] > migration[0]

    def test_fig11_stream_flavours(self):
        config = fig11_timeseries.Fig11Config(rule_count=40, batch_size=10)
        facebook = fig11_timeseries.build_stream("facebook", config)
        geant = fig11_timeseries.build_stream("geant", config)
        assert len(facebook) == 40 and len(geant) == 40
        with pytest.raises(ValueError):
            fig11_timeseries.build_stream("bogus", config)

    def test_fig12_single_point(self):
        trace = MicrobenchConfig(arrival_rate=400, overlap_rate=1.0, duration=0.25)
        violations, migrations = fig12_simple.run_one("pica8-p3290", 0.0, trace)
        assert violations < 5.0
        assert migrations > 0

    def test_fig13_single_point(self):
        mean_ms, p99_ms, violations = fig13_slack.run_point(
            "dell-8132f", 200.0, 0.0, 1.0, duration=0.25
        )
        assert 0 < mean_ms < p99_ms
        assert violations >= 0

    def test_ablation_variant(self):
        config = ablation.AblationConfig(arrival_rate=300, duration=0.5)
        stats = ablation.run_variant({}, config)
        assert stats["migrations"] >= 1
        assert stats["gap_ms"] == 0.0

    def test_bgp_trace_builder(self):
        config = bgp_section.BgpConfig(duration=3.0)
        trace = bgp_section.fib_trace("nwax", config)
        assert trace
        times = [timed.time for timed in trace]
        assert times == sorted(times)


class TestCommonHelpers:
    def test_facebook_workload_shapes(self):
        scale = WorkloadScale(job_count=5)
        graph, flows, short_ids, long_ids = facebook_workload(scale)
        assert flows
        assert short_ids or long_ids
        assert not short_ids & long_ids

    def test_isp_workload(self):
        scale = WorkloadScale(isp_flow_duration=1.0)
        graph, flows = isp_workload("abilene", scale)
        assert graph.number_of_nodes() == 11
        assert flows

    def test_isp_workload_tomogravity_path(self):
        scale = WorkloadScale(isp_flow_duration=0.5)
        _, flows = isp_workload("abilene", scale, tomogravity=True)
        assert flows

    def test_heterogeneous_factory_assigns_by_role(self):
        from repro.experiments.common import heterogeneous_installer_factory

        factory = heterogeneous_installer_factory(
            "naive",
            {"edge": "dell-8132f", "core": "pica8-p3290"},
            default_switch="hp-5406zl",
        )
        assert factory("edge-0-1").table.timing.name == "Dell 8132F"
        assert factory("core-3").table.timing.name == "Pica8 P-3290"
        assert factory("agg-1-0").table.timing.name == "HP 5406zl"

    def test_heterogeneous_factory_in_simulation(self):
        import numpy as np

        from repro.experiments.common import heterogeneous_installer_factory
        from repro.simulator import Simulation, SimulationConfig, TeAppConfig
        from repro.topology import FatTreeSpec, build_fat_tree, hosts
        from repro.traffic import flows_of, generate_jobs

        graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
        flows = flows_of(
            generate_jobs(hosts(graph), job_count=4, rng=np.random.default_rng(0))
        )
        factory = heterogeneous_installer_factory(
            "hermes", {"edge": "dell-8132f"}, default_switch="pica8-p3290"
        )
        sim = Simulation(
            graph,
            flows,
            factory,
            SimulationConfig(
                te=TeAppConfig(epoch=0.5), baseline_occupancy=100, max_time=1e3
            ),
        )
        metrics = sim.run()
        assert len(metrics.fcts()) == len(flows)
        edge_agent = sim.controller.agents["edge-0-0"]
        core_agent = sim.controller.agents["core-0"]
        assert edge_agent.installer.timing.name == "Dell 8132F"
        assert core_agent.installer.timing.name == "Pica8 P-3290"

    def test_installer_factory_fresh_instances(self):
        factory = installer_factory("naive", "pica8-p3290", seed=1)
        first, second = factory("s1"), factory("s2")
        assert first is not second

    def test_replay_trace_without_batching(self):
        trace_config = MicrobenchConfig(arrival_rate=100, duration=0.2)
        outcome = replay_trace(
            generate_trace(trace_config),
            "naive",
            "pica8-p3290",
            prefill_rules=seed_rules(trace_config),
        )
        assert len(outcome.response_times) == len(outcome.execution_latencies)
        assert all(
            response >= execution - 1e-12
            for response, execution in zip(
                outcome.response_times, outcome.execution_latencies
            )
        )

    def test_replay_trace_with_batching(self):
        trace_config = MicrobenchConfig(arrival_rate=100, duration=0.2)
        outcome = replay_trace(
            generate_trace(trace_config),
            "espres",
            "pica8-p3290",
            batch_window=0.05,
        )
        assert len(outcome.response_times) == 20
