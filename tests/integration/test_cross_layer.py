"""Cross-layer integration tests.

These exercise whole pipelines — BGP updates through the RIB/FIB into
Hermes's partitioned TCAM, Hermes under churn with live migrations against
a monolithic reference, and the operator API over a running workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_partition
from repro.bgp import BgpRouter, generate_updates, get_router_profile
from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller, HermesService
from repro.switchsim import DirectInstaller, FlowMod, SwitchAgent
from repro.tcam import Action, Prefix, Rule, dell_8132f, pica8_p3290
from repro.traffic import MicrobenchConfig, generate_trace, seed_rules


class TestBgpThroughHermes:
    """The FIB installed through Hermes must forward exactly as the RIB says."""

    def test_forwarding_matches_rib_best_routes(self):
        profile = get_router_profile("nwax")
        updates = generate_updates(profile, 10.0, rng=np.random.default_rng(5))
        router = BgpRouter()
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                guarantee=GuaranteeSpec.milliseconds(5),
                admission_control=False,
            ),
        )
        agent = SwitchAgent(hermes)
        for update in updates:
            for flow_mod in router.process(update):
                agent.submit(flow_mod, at_time=update.time)
        # Force any shadow remainder through a final migration, then check
        # that every reachable prefix forwards out the RIB-selected port.
        hermes.rule_manager.migrate(now=updates[-1].time + 1.0)
        # The partitioned pair must provably behave like one table.
        assert hermes.verify() == []
        checked = 0
        for route in router.rib.best_routes():
            probe = route.prefix.first_address
            hit = hermes.lookup(probe)
            assert hit is not None, f"no rule covers {route.prefix}"
            # Longest-prefix match: the hit must be at least as specific as
            # this route's prefix; when equal, ports must agree.
            hit_prefix = hit.match.to_prefix()
            assert hit_prefix.length >= route.prefix.length
            if hit_prefix == route.prefix:
                assert hit.action.port == router.fib.port_for(route)
                checked += 1
        assert checked > 50  # the assertion actually bit

    def test_fib_entry_count_matches_hermes_occupancy(self):
        profile = get_router_profile("uoregon")
        updates = generate_updates(profile, 5.0, rng=np.random.default_rng(9))
        router = BgpRouter()
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(admission_control=False),
        )
        for update in updates:
            for flow_mod in router.process(update):
                hermes.apply(flow_mod)
        # FIB prefixes are disjoint-by-length LPM rules; Hermes never
        # fragments them (no overlap has *higher* priority under the
        # priority=length encoding unless prefixes nest, in which case the
        # more specific rule wins both tables consistently).
        assert hermes.occupancy() >= router.fib.entry_count()


class TestChurnDifferential:
    """Hermes with live migrations stays equivalent to a monolithic table."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_probe_after_heavy_churn(self, probe_seed):
        rng = np.random.default_rng(probe_seed % 10_000)
        hermes = HermesInstaller(
            dell_8132f(),
            config=HermesConfig(
                shadow_capacity=24,
                admission_control=False,
                epoch=0.01,
            ),
        )
        direct = DirectInstaller(pica8_p3290())
        installed = []
        time = 0.0
        for step in range(120):
            time += 0.005
            hermes.advance_time(time)
            if installed and rng.random() < 0.3:
                victim = installed.pop(int(rng.integers(0, len(installed))))
                hermes.apply(FlowMod.delete(victim[0].rule_id))
                direct.apply(FlowMod.delete(victim[1].rule_id))
                continue
            length = int(rng.integers(8, 25))
            mask = ((1 << length) - 1) << (32 - length)
            network = ((10 << 24) | int(rng.integers(0, 1 << 24)) << 0) & mask
            priority = int(rng.integers(1, 200))
            port = int(rng.integers(1, 9))
            pair = (
                Rule.from_prefix(Prefix(network, length), priority, Action.output(port)),
                Rule.from_prefix(Prefix(network, length), priority, Action.output(port)),
            )
            hermes.apply(FlowMod.add(pair[0]))
            direct.apply(FlowMod.add(pair[1]))
            installed.append(pair)
        # Force one more migration mid-state, then let the static verifier
        # check the pair wholesale before the probe-based differential.
        hermes.rule_manager.migrate(time)
        assert verify_partition(hermes.shadow.rules(), hermes.main.rules()) == []
        probes = set()
        for h_rule, _ in installed:
            prefix = h_rule.match.to_prefix()
            probes.add(prefix.first_address)
            probes.add(prefix.last_address)
        for probe in probes:
            matching = [r for r, _ in installed if r.match.matches(probe)]
            priorities = [r.priority for r in matching]
            if priorities and priorities.count(max(priorities)) > 1:
                continue  # tie: monolithic order is implementation-defined
            h_hit = hermes.lookup(probe)
            d_hit = direct.lookup(probe)
            h_action = None if h_hit is None else h_hit.action
            d_action = None if d_hit is None else d_hit.action
            assert h_action == d_action


class TestOperatorLifecycle:
    """Create -> tighten -> re-scope -> delete a QoS over live traffic."""

    def test_full_lifecycle(self):
        service = HermesService()
        service.register_switch("s1", pica8_p3290())
        handle = service.CreateTCAMQoS("s1", GuaranteeSpec.milliseconds(10))
        installer = service.installer(handle.shadow_id)
        trace_config = MicrobenchConfig(arrival_rate=300, duration=0.5)
        agent = SwitchAgent(installer)
        for timed in generate_trace(trace_config):
            agent.submit(timed.flow_mod, at_time=timed.time)
        occupancy_before = installer.occupancy()

        # Tighten the guarantee mid-flight: rules survive, shadow shrinks.
        assert service.ModQoSConfig(handle.shadow_id, GuaranteeSpec.milliseconds(1))
        assert installer.occupancy() == occupancy_before
        assert installer.shadow.capacity < handle.shadow_capacity

        # Narrow the scope, then tear down.
        from repro.core import priority_at_least

        assert service.ModQoSMatch(handle.shadow_id, priority_at_least(10_000))
        late = installer.apply(
            FlowMod.add(Rule.from_prefix("203.0.113.0/24", 5, Action.output(1)))
        )
        assert not late.used_guaranteed_path
        assert service.DeleteQoS(handle.shadow_id)
        assert installer.shadow.occupancy == 0
