"""End-to-end chaos tests: the ISSUE's acceptance criteria, in miniature.

Byte-identity must be checked *cross-process*: rule ids come from a
process-global counter, so two simulations in one interpreter diverge for
reasons unrelated to faults.  Each arm of the comparison runs in a fresh
``python`` subprocess and reports a digest of its metric series.
"""

import os
import subprocess
import sys

import pytest

from repro.experiments.chaos import ChaosConfig, run_cell

SMALL = ChaosConfig(job_count=6, max_time=4.0)

# Row tail indices returned by run_cell; VIOLATIONS is the structured
# record list the ruleset verifier appends (and extras exposes).
INSTALLS, RETRIES, INJECTED, LOST, DUPS, INVARIANT, VIOLATIONS = (
    0, 1, 2, 3, 4, 5, 7,
)


class TestChaosCells:
    @pytest.mark.parametrize("scheme", ["naive", "hermes"])
    @pytest.mark.parametrize("drop_rate", [0.1, 0.25])
    def test_resilient_channel_loses_nothing(self, scheme, drop_rate):
        cell = run_cell(scheme, "resilient", drop_rate, SMALL)
        assert cell[LOST] == 0  # every install eventually landed
        assert cell[DUPS] == 0  # lost acks never double-installed
        assert cell[INVARIANT] == 0  # Algorithm 1's invariant held
        assert cell[INJECTED] > 0  # ...and faults really were injected
        # One redelivery per injected loss, none wasted:
        assert cell[RETRIES] == cell[INJECTED]

    def test_cells_record_structured_verifier_output(self):
        # The invariant/duplicate columns are now *derived* from the shared
        # ruleset verifier's records, so a clean cell must report both an
        # empty record list and zero counts — and a corrupted record list
        # would surface per-switch attribution.
        cell = run_cell("hermes", "resilient", 0.1, SMALL)
        assert cell[VIOLATIONS] == []
        assert cell[DUPS] == 0 and cell[INVARIANT] == 0

    def test_naive_channel_loses_installs(self):
        cell = run_cell("naive", "naive", 0.1, SMALL)
        assert cell[LOST] > 0
        assert cell[RETRIES] == 0  # fire-and-forget never retries

    @pytest.mark.parametrize("scheme", ["naive", "hermes"])
    def test_drop_zero_parity(self, scheme):
        # At drop rate zero the resilient channel must do exactly the work
        # the naive one does: same installs, no retries, no losses.
        naive = run_cell(scheme, "naive", 0.0, SMALL)
        resilient = run_cell(scheme, "resilient", 0.0, SMALL)
        assert resilient[INSTALLS] == naive[INSTALLS]
        assert resilient[RETRIES] == 0
        assert resilient[LOST] == 0 and naive[LOST] == 0


_DIGEST_SCRIPT = r"""
import hashlib, json, sys
import numpy as np
from repro.baselines import make_installer
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs

mode, scheme = sys.argv[1], sys.argv[2]
graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
flows = flows_of(
    generate_jobs(
        hosts(graph), job_count=6, arrival_rate=6.0, rng=np.random.default_rng(7)
    )
)
timing = get_switch_model("pica8-p3290")
kwargs = {}
if scheme == "hermes":
    from repro.experiments.common import default_hermes_config

    kwargs["hermes_config"] = default_hermes_config()
if mode == "plain":
    config = SimulationConfig(
        te=TeAppConfig(epoch=0.25), baseline_occupancy=200, max_time=3.0
    )
    factory = lambda name: make_installer(scheme, timing, **kwargs)
    simulation = Simulation(graph, flows, factory, config)
else:  # null-plan injector + naive channel: must be byte-identical
    from repro.faults import FaultInjector, FaultPlan

    plan = FaultPlan()
    injector = FaultInjector(plan=plan, seed=7)
    config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=200,
        max_time=3.0,
        fault_plan=plan,
    )
    factory = lambda name: make_installer(scheme, timing, injector=injector, **kwargs)
    simulation = Simulation(graph, flows, factory, config, injector=injector)
metrics = simulation.run()
payload = json.dumps(
    [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
).encode()
print(hashlib.sha256(payload).hexdigest())
"""


def _digest(mode: str, scheme: str) -> str:
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT, mode, scheme],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestByteIdentity:
    @pytest.mark.parametrize("scheme", ["naive", "hermes"])
    def test_null_plan_is_byte_identical_to_seed_path(self, scheme):
        assert _digest("plain", scheme) == _digest("faultless", scheme)
