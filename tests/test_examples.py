"""Smoke tests: the example scripts run and tell their stories.

Only the fast examples execute here (the TE comparison takes a minute and
is covered by the Figure 1/8/9 benchmarks); the rest are import-checked.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestFastExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "guarantee violations: 0" in output
        assert "5 ms guarantee" in output

    def test_multitable_acl(self):
        output = run_example("multitable_acl.py")
        assert "guaranteed path: True" in output
        assert "tenant -> output:4" in output

    def test_bgp_router(self):
        output = run_example("bgp_router.py")
        assert "Hermes (5 ms)" in output
        assert "RIB -> FIB" in output


class TestAllExamplesParse:
    @pytest.mark.parametrize(
        "name",
        sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_imports(self, name):
        spec = importlib.util.spec_from_file_location(
            f"example_{name[:-3]}", EXAMPLES_DIR / name
        )
        module = importlib.util.module_from_spec(spec)
        # Import executes top-level code only; main() is __main__-guarded.
        spec.loader.exec_module(module)
        assert hasattr(module, "main")
