"""Tests for link-failure injection and blackhole accounting."""

import numpy as np
import pytest

from repro.baselines import make_installer
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import ideal_switch, pica8_p3290
from repro.topology import FatTreeSpec, build_fat_tree, hosts, path_links
from repro.traffic import FlowSpec


@pytest.fixture(scope="module")
def tree():
    return build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))


def long_flow(graph, size=1e9):
    names = hosts(graph)
    return FlowSpec(
        source=names[0], destination=names[-1], size=size, start_time=0.0
    )


def failing_config(link, at_time=0.5, switch_scheme=("naive",)):
    return SimulationConfig(
        te=TeAppConfig(epoch=10.0),  # isolate the failure path from TE
        baseline_occupancy=500,
        max_time=1e4,
        link_failures=((at_time, link), ),
    )


def first_path_core_link(graph, flow):
    from repro.topology import PathProvider

    provider = PathProvider(graph)
    path = provider.ecmp_paths(flow.source, flow.destination)[flow.flow_id % 4]
    return path_links(path)[2]  # an agg<->core link


class TestFailureInjection:
    def test_flow_survives_failure_and_completes(self, tree):
        flow = long_flow(tree)
        link = first_path_core_link(tree, flow)
        factory = lambda name: make_installer("naive", ideal_switch())
        sim = Simulation(tree, [flow], factory, failing_config(link))
        metrics = sim.run()
        assert len(metrics.fcts()) == 1
        assert metrics.total_reroutes() >= 1

    def test_blackhole_time_recorded(self, tree):
        flow = long_flow(tree)
        link = first_path_core_link(tree, flow)
        factory = lambda name: make_installer("naive", pica8_p3290())
        sim = Simulation(tree, [flow], factory, failing_config(link))
        sim.run()
        assert sim.blackhole_time > 0

    def test_hermes_shrinks_blackhole_window(self, tree):
        flow = long_flow(tree)
        link = first_path_core_link(tree, flow)
        config = failing_config(link)
        naive_sim = Simulation(
            tree, [flow], lambda n: make_installer("naive", pica8_p3290()), config
        )
        naive_sim.run()
        hermes_sim = Simulation(
            tree, [flow], lambda n: make_installer("hermes", pica8_p3290()), config
        )
        hermes_sim.run()
        assert hermes_sim.blackhole_time < naive_sim.blackhole_time

    def test_failed_link_avoided_by_new_arrivals(self, tree):
        flow = long_flow(tree)
        link = first_path_core_link(tree, flow)
        late = FlowSpec(
            source=flow.source,
            destination=flow.destination,
            size=1e6,
            start_time=1.0,  # after the failure
        )
        factory = lambda name: make_installer("naive", ideal_switch())
        sim = Simulation(tree, [flow, late], factory, failing_config(link))
        sim.run()
        # Everyone completed despite the dead link.
        assert len(sim.metrics.fcts()) == 2

    def test_failure_before_any_flow(self, tree):
        flow = FlowSpec(
            source=hosts(tree)[0],
            destination=hosts(tree)[-1],
            size=1e6,
            start_time=1.0,
        )
        link = first_path_core_link(tree, flow)
        factory = lambda name: make_installer("naive", ideal_switch())
        sim = Simulation(
            tree, [flow], factory, failing_config(link, at_time=0.1)
        )
        metrics = sim.run()
        assert len(metrics.fcts()) == 1
        assert sim.blackhole_time == 0.0  # nothing was in flight
