"""Tests for the reactive (packet-in) routing mode."""

import numpy as np
import pytest

from repro.baselines import make_installer
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import ideal_switch, pica8_p3290
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import FlowSpec


@pytest.fixture(scope="module")
def tree():
    return build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))


def small_flows(graph, count=10):
    names = hosts(graph)
    return [
        FlowSpec(
            source=names[index % len(names)],
            destination=names[(index + 7) % len(names)],
            size=1e6,
            start_time=0.01 * index,
        )
        for index in range(count)
    ]


def run(graph, flows, scheme, switch, mode):
    config = SimulationConfig(
        te=TeAppConfig(epoch=10.0),  # effectively disable TE: isolate setup cost
        baseline_occupancy=500,
        max_time=1e4,
        routing_mode=mode,
    )
    factory = lambda name: make_installer(scheme, switch())
    return Simulation(graph, list(flows), factory, config).run()


class TestReactiveMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing_mode="hybrid")

    def test_reactive_flows_complete(self, tree):
        flows = small_flows(tree)
        metrics = run(tree, flows, "naive", ideal_switch, "reactive")
        assert len(metrics.fcts()) == len(flows)

    def test_reactive_records_setup_rits(self, tree):
        flows = small_flows(tree)
        metrics = run(tree, flows, "naive", pica8_p3290, "reactive")
        # Every flow triggered installs along its path (>= 2 switches).
        assert len(metrics.rits()) >= 2 * len(flows)

    def test_startup_latency_inflates_short_flow_fct(self, tree):
        flows = small_flows(tree)
        proactive = run(tree, flows, "naive", pica8_p3290, "proactive")
        reactive = run(tree, flows, "naive", pica8_p3290, "reactive")
        # 1 MB flows move in ~8 ms at 1 Gbps; reactive setup against a
        # 500-entry table adds tens of milliseconds per flow.
        assert np.median(reactive.fcts()) > np.median(proactive.fcts()) * 1.5

    def test_hermes_shrinks_reactive_startup_penalty(self, tree):
        flows = small_flows(tree)
        naive = run(tree, flows, "naive", pica8_p3290, "reactive")
        hermes = run(tree, flows, "hermes", pica8_p3290, "reactive")
        assert np.median(hermes.fcts()) < np.median(naive.fcts())

    def test_reactive_flow_rules_cleaned_up(self, tree):
        flows = small_flows(tree, count=4)
        config = SimulationConfig(
            te=TeAppConfig(epoch=10.0),
            baseline_occupancy=0,
            max_time=1e4,
            routing_mode="reactive",
        )
        factory = lambda name: make_installer("naive", ideal_switch())
        simulation = Simulation(tree, flows, factory, config)
        simulation.run()
        for flow in flows:
            assert not simulation.controller.has_rules_for(flow.flow_id)
