"""Tests for the Varys simulator: controller, TE app, end-to-end runs."""

import math

import numpy as np
import pytest

from repro.baselines import make_installer
from repro.simulator import (
    MetricsCollector,
    ProactiveTeApp,
    SdnController,
    Simulation,
    SimulationConfig,
    TeAppConfig,
    flow_match,
    flow_rule_priority,
)
from repro.tcam import ideal_switch, pica8_p3290
from repro.topology import FatTreeSpec, PathProvider, build_fat_tree, hosts
from repro.traffic import FlowSpec, flows_of, generate_jobs


@pytest.fixture(scope="module")
def small_tree():
    return build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))


def naive_factory(switch_name):
    return make_installer("naive", pica8_p3290())


def ideal_factory(switch_name):
    return make_installer("naive", ideal_switch())


class TestMetricsCollector:
    def test_fct_accounting(self):
        metrics = MetricsCollector()
        spec = FlowSpec(source="a", destination="b", size=100.0, start_time=1.0)
        metrics.flow_started(spec, 1.0)
        metrics.flow_finished(spec.flow_id, 3.5)
        assert metrics.fcts() == [pytest.approx(2.5)]

    def test_incomplete_flow_has_no_fct(self):
        metrics = MetricsCollector()
        spec = FlowSpec(source="a", destination="b", size=100.0, start_time=0.0)
        metrics.flow_started(spec, 0.0)
        assert metrics.fcts() == []
        with pytest.raises(ValueError):
            metrics.flow_records()[0].fct

    def test_jct_spans_job_flows(self):
        metrics = MetricsCollector()
        flows = [
            FlowSpec(source="a", destination="b", size=1.0, start_time=0.0, job_id=9),
            FlowSpec(source="c", destination="d", size=1.0, start_time=1.0, job_id=9),
        ]
        for flow in flows:
            metrics.flow_started(flow, flow.start_time)
        metrics.flow_finished(flows[0].flow_id, 2.0)
        metrics.flow_finished(flows[1].flow_id, 5.0)
        assert metrics.jcts() == {9: pytest.approx(5.0)}

    def test_jobs_with_incomplete_flows_excluded(self):
        metrics = MetricsCollector()
        flows = [
            FlowSpec(source="a", destination="b", size=1.0, start_time=0.0, job_id=9),
            FlowSpec(source="c", destination="d", size=1.0, start_time=0.0, job_id=9),
        ]
        for flow in flows:
            metrics.flow_started(flow, 0.0)
        metrics.flow_finished(flows[0].flow_id, 1.0)
        assert metrics.jcts() == {}


class TestController:
    def test_install_path_touches_all_switches(self, small_tree):
        controller = SdnController(small_tree, naive_factory, control_rtt=1e-3)
        provider = PathProvider(small_tree)
        flow = FlowSpec(
            source="host-0-0-0", destination="host-1-0-0", size=1e6, start_time=0.0
        )
        path = provider.shortest_path(flow.source, flow.destination)
        outcome = controller.install_path(flow, path, now=0.0)
        assert len(outcome.per_switch_rits) == len(path) - 2  # minus two hosts
        assert outcome.ready_time > 1e-3  # at least the RTT

    def test_remove_flow_rules(self, small_tree):
        controller = SdnController(small_tree, naive_factory)
        provider = PathProvider(small_tree)
        flow = FlowSpec(
            source="host-0-0-0", destination="host-1-0-0", size=1e6, start_time=0.0
        )
        path = provider.shortest_path(flow.source, flow.destination)
        controller.install_path(flow, path, now=0.0)
        assert controller.has_rules_for(flow.flow_id)
        controller.remove_flow_rules(flow, path, now=1.0)
        assert not controller.has_rules_for(flow.flow_id)

    def test_prefill_sets_occupancy(self, small_tree):
        controller = SdnController(small_tree, naive_factory)
        controller.prefill_switches(100)
        agent = next(iter(controller.agents.values()))
        assert agent.installer.occupancy() == 100
        assert agent.stats.actions == 0  # warm-up is not measured

    def test_flow_match_unique_and_exact(self):
        a = FlowSpec(source="a", destination="b", size=1.0, start_time=0.0)
        b = FlowSpec(source="a", destination="b", size=1.0, start_time=0.0)
        assert flow_match(a) != flow_match(b)
        assert flow_match(a).matches(a.flow_id)
        assert not flow_match(a).matches(b.flow_id)

    def test_te_priority_above_background_band(self):
        flow = FlowSpec(source="a", destination="b", size=1.0, start_time=0.0)
        assert flow_rule_priority(flow) >= 100


class TestTeApp:
    def test_no_moves_below_threshold(self, small_tree):
        provider = PathProvider(small_tree)
        app = ProactiveTeApp(provider, TeAppConfig(utilization_threshold=0.9))
        flow = FlowSpec(
            source="host-0-0-0", destination="host-1-0-0", size=1e9, start_time=0.0
        )
        path = provider.shortest_path(flow.source, flow.destination)
        from repro.topology import path_links

        utilization = {link: 0.5 for link in path_links(path)}
        moves = app.plan(
            {flow.flow_id: flow},
            {flow.flow_id: path},
            {flow.flow_id: 5e8},
            utilization,
            {link: 1e9 for link in path_links(path)},
        )
        assert moves == []

    def test_moves_congested_flow_to_cold_path(self, small_tree):
        provider = PathProvider(small_tree)
        app = ProactiveTeApp(provider, TeAppConfig(utilization_threshold=0.7))
        flow = FlowSpec(
            source="host-0-0-0", destination="host-3-0-0", size=1e9, start_time=0.0
        )
        path = provider.paths(flow.source, flow.destination)[0]
        from repro.topology import path_links

        capacities = {
            tuple(sorted((a, b))): data["capacity"]
            for a, b, data in small_tree.edges(data=True)
        }
        # Congest the transit links only: the first and last links (host
        # access) are shared by every alternative path and unavoidable.
        transit = path_links(path)[1:-1]
        utilization = {link: 0.95 for link in transit}
        moves = app.plan(
            {flow.flow_id: flow},
            {flow.flow_id: path},
            {flow.flow_id: 9.5e8},
            utilization,
            capacities,
        )
        assert len(moves) == 1
        assert moves[0].new_path != path

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TeAppConfig(epoch=0)
        with pytest.raises(ValueError):
            TeAppConfig(utilization_threshold=1.5)
        with pytest.raises(ValueError):
            TeAppConfig(max_moves_per_epoch=-1)


class TestEndToEnd:
    def make_flows(self, graph, job_count=10):
        return flows_of(
            generate_jobs(
                hosts(graph),
                job_count=job_count,
                arrival_rate=4.0,
                rng=np.random.default_rng(0),
            )
        )

    def test_all_flows_complete(self, small_tree):
        flows = self.make_flows(small_tree)
        sim = Simulation(
            small_tree,
            flows,
            ideal_factory,
            SimulationConfig(baseline_occupancy=0, max_time=1e4),
        )
        metrics = sim.run()
        assert len(metrics.fcts()) == len(flows)
        assert all(fct > 0 for fct in metrics.fcts())

    def test_byte_conservation(self, small_tree):
        """Total delivered bytes over total FCT-weighted rate is consistent:
        every flow's FCT must be at least size / fastest-possible-rate."""
        flows = self.make_flows(small_tree, job_count=5)
        sim = Simulation(
            small_tree,
            flows,
            ideal_factory,
            SimulationConfig(baseline_occupancy=0, max_time=1e4),
        )
        metrics = sim.run()
        for record in metrics.flow_records():
            lower_bound = record.spec.size * 8.0 / 1e9  # line rate
            assert record.fct >= lower_bound * (1 - 1e-9)

    def test_realistic_switch_slows_rit_not_correctness(self, small_tree):
        flows = self.make_flows(small_tree)
        config = SimulationConfig(
            te=TeAppConfig(epoch=0.2, utilization_threshold=0.5),
            baseline_occupancy=500,
            max_time=1e4,
            initial_path_policy="static",
        )
        ideal_metrics = Simulation(small_tree, flows, ideal_factory, config).run()
        naive_metrics = Simulation(small_tree, flows, naive_factory, config).run()
        assert len(naive_metrics.fcts()) == len(flows)
        if naive_metrics.rits() and ideal_metrics.rits():
            assert np.median(naive_metrics.rits()) > np.median(ideal_metrics.rits())

    def test_hermes_bounds_rit_in_simulation(self, small_tree):
        flows = self.make_flows(small_tree)
        config = SimulationConfig(
            te=TeAppConfig(epoch=0.2, utilization_threshold=0.5),
            baseline_occupancy=500,
            max_time=1e4,
            initial_path_policy="static",
        )
        hermes_factory = lambda sw: make_installer("hermes", pica8_p3290())
        metrics = Simulation(small_tree, flows, hermes_factory, config).run()
        rits = metrics.rits()
        assert rits, "the TE app should have issued reconfigurations"
        # Installation (excluding queueing) is bounded; queueing can stack a
        # few guaranteed installs, so allow a small multiple.
        assert np.percentile(rits, 95) < 5 * 5e-3

    def test_static_policy_triggers_more_reroutes(self, small_tree):
        flows = self.make_flows(small_tree)
        base = dict(
            te=TeAppConfig(epoch=0.2, utilization_threshold=0.5),
            baseline_occupancy=0,
            max_time=1e4,
        )
        hashed = Simulation(
            small_tree, flows, ideal_factory,
            SimulationConfig(initial_path_policy="ecmp-hash", **base),
        ).run()
        static = Simulation(
            small_tree, flows, ideal_factory,
            SimulationConfig(initial_path_policy="static", **base),
        ).run()
        assert static.total_reroutes() >= hashed.total_reroutes()

    def test_max_time_cutoff(self, small_tree):
        flows = self.make_flows(small_tree)
        sim = Simulation(
            small_tree,
            flows,
            ideal_factory,
            SimulationConfig(baseline_occupancy=0, max_time=0.5),
        )
        metrics = sim.run()
        assert sim.now <= 0.5 + 1e-9
        assert all(
            record.finish_time is None or record.finish_time <= 0.5
            for record in metrics.flow_records()
        )

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(initial_path_policy="random")
