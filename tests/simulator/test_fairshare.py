"""Tests for max-min fair rate allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import link_utilization, max_min_fair_rates


L1 = ("a", "b")
L2 = ("b", "c")


class TestMaxMinFairness:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates({1: [L1]}, {L1: 10.0})
        assert rates[1] == pytest.approx(10.0)

    def test_equal_split_on_shared_link(self):
        rates = max_min_fair_rates({1: [L1], 2: [L1]}, {L1: 10.0})
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_classic_three_flow_example(self):
        # Flow A uses L1+L2, B uses L1, C uses L2; capacities 10 each.
        # Max-min: A=5, B=5, C=5.
        rates = max_min_fair_rates(
            {"A": [L1, L2], "B": [L1], "C": [L2]}, {L1: 10.0, L2: 10.0}
        )
        assert rates["A"] == pytest.approx(5.0)
        assert rates["B"] == pytest.approx(5.0)
        assert rates["C"] == pytest.approx(5.0)

    def test_bottleneck_frees_capacity_elsewhere(self):
        # A on the thin link shares it; B alone enjoys the fat link's rest.
        rates = max_min_fair_rates(
            {"A": [L1, L2], "B": [L2]}, {L1: 2.0, L2: 10.0}
        )
        assert rates["A"] == pytest.approx(2.0)
        assert rates["B"] == pytest.approx(8.0)

    def test_empty_path_means_unconstrained(self):
        rates = max_min_fair_rates({1: []}, {})
        assert rates[1] > 1e12

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            max_min_fair_rates({1: [("x", "y")]}, {L1: 1.0})

    def test_no_flows(self):
        assert max_min_fair_rates({}, {L1: 1.0}) == {}

    @settings(max_examples=50, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=20),
            st.lists(
                st.sampled_from([("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]),
                min_size=1,
                max_size=3,
                unique=True,
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_allocation_is_feasible_and_positive(self, flow_paths):
        capacities = {
            ("a", "b"): 10.0,
            ("b", "c"): 7.0,
            ("c", "d"): 5.0,
            ("a", "d"): 3.0,
        }
        rates = max_min_fair_rates(flow_paths, capacities)
        assert set(rates) == set(flow_paths)
        assert all(rate >= 0 for rate in rates.values())
        # No link is oversubscribed (small float tolerance).
        load = {}
        for flow_id, path in flow_paths.items():
            for link in path:
                load[link] = load.get(link, 0.0) + rates[flow_id]
        for link, total in load.items():
            assert total <= capacities[link] * (1 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=10),
            st.lists(
                st.sampled_from([("a", "b"), ("b", "c")]),
                min_size=1,
                max_size=2,
                unique=True,
            ),
            min_size=2,
            max_size=8,
        )
    )
    def test_max_min_property(self, flow_paths):
        """No flow's rate can rise without lowering a poorer flow's rate:
        every flow is bottlenecked at a saturated link where it has the
        maximal share."""
        capacities = {("a", "b"): 10.0, ("b", "c") : 6.0}
        rates = max_min_fair_rates(flow_paths, capacities)
        load = {}
        for flow_id, path in flow_paths.items():
            for link in path:
                load[link] = load.get(link, 0.0) + rates[flow_id]
        for flow_id, path in flow_paths.items():
            bottlenecked = False
            for link in path:
                saturated = load[link] >= capacities[link] * (1 - 1e-9)
                share_is_max = all(
                    rates[flow_id] >= rates[other] - 1e-9
                    for other, other_path in flow_paths.items()
                    if link in other_path
                )
                if saturated and share_is_max:
                    bottlenecked = True
            assert bottlenecked, f"flow {flow_id} has no bottleneck link"


class TestLinkUtilization:
    def test_utilization_computed_per_link(self):
        utilization = link_utilization(
            {1: [L1], 2: [L1, L2]}, {1: 4.0, 2: 2.0}, {L1: 10.0, L2: 10.0}
        )
        assert utilization[L1] == pytest.approx(0.6)
        assert utilization[L2] == pytest.approx(0.2)

    def test_zero_capacity_links_skipped(self):
        utilization = link_utilization({1: [L1]}, {1: 1.0}, {L1: 0.0})
        assert L1 not in utilization
