"""Tests for the columnar flow-state engine.

Three layers of evidence that ``flow_state="columnar"`` is safe:

* a hypothesis differential suite pinning the vectorized fair share
  *bit-identical* (``==``, no tolerance) to the dict backend on random
  topologies and workloads;
* FlowStore unit tests for the row lifecycle (stable compaction, path
  churn, flags, link failure);
* whole-simulation differentials: the columnar backend must reproduce
  the object backend's metrics exactly on arrival/completion workloads,
  under TE, under link failures, in both completion modes, and across
  same-instant arrival bursts (the batched-recompute fast path);
* a cross-process digest check that ``flow_state="objects"`` still
  matches the seed parity digests pinned in ``tests/engine/test_parity``.
"""

import json
import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    FlowStore,
    Simulation,
    UNCONSTRAINED_RATE,
    columnar_max_min_fair_rates,
    max_min_fair_rates,
)
from repro.simulator.flowstate import FlowColumnView
from repro.traffic.flows import FlowSpec

from tests.engine.test_parity import (
    CHAOS_RESULT_DIGEST,
    CHAOS_TRACE_DIGEST,
    _SCENARIO_SCRIPT,
    _run_script,
)

LINKS = [
    ("a", "b"),
    ("b", "c"),
    ("c", "d"),
    ("a", "d"),
    ("b", "d"),
    ("a", "c"),
]


def spec(flow_id, size=1e6, start=0.0, src="h0", dst="h1"):
    return FlowSpec(
        source=src, destination=dst, size=size, start_time=start,
        flow_id=flow_id,
    )


class TestColumnarFairShareDifferential:
    """The vectorized filling is bit-identical to the dict backend."""

    @settings(max_examples=200, deadline=None)
    @given(
        flow_paths=st.dictionaries(
            st.integers(min_value=0, max_value=40),
            st.lists(st.sampled_from(LINKS), max_size=4, unique=True),
            max_size=25,
        ),
        capacities=st.fixed_dictionaries(
            {
                link: st.floats(
                    min_value=1e-3, max_value=1e12, allow_nan=False
                )
                for link in LINKS
            }
        ),
    )
    def test_bit_identical_on_random_workloads(self, flow_paths, capacities):
        reference = max_min_fair_rates(flow_paths, capacities)
        columnar = columnar_max_min_fair_rates(flow_paths, capacities)
        assert columnar == reference  # exact float equality, no tolerance

    @settings(max_examples=50, deadline=None)
    @given(
        flow_ids=st.lists(
            st.text(min_size=1, max_size=6), min_size=1, max_size=12,
            unique=True,
        )
    )
    def test_string_flow_ids_bit_identical(self, flow_ids):
        flow_paths = {
            flow_id: [LINKS[index % len(LINKS)]]
            for index, flow_id in enumerate(flow_ids)
        }
        capacities = {link: 7.5e8 for link in LINKS}
        assert columnar_max_min_fair_rates(
            flow_paths, capacities
        ) == max_min_fair_rates(flow_paths, capacities)

    def test_zero_capacity_bottleneck(self):
        flow_paths = {1: [LINKS[0], LINKS[1]], 2: [LINKS[1]]}
        capacities = {LINKS[0]: 0.0, LINKS[1]: 10.0}
        reference = max_min_fair_rates(flow_paths, capacities)
        assert columnar_max_min_fair_rates(flow_paths, capacities) == reference
        assert reference[1] == 0.0

    def test_empty_paths_get_sentinel_rate(self):
        rates = columnar_max_min_fair_rates({1: [], 2: [LINKS[0]]}, {LINKS[0]: 4.0})
        assert rates[1] == UNCONSTRAINED_RATE
        assert rates[2] == 4.0

    def test_unknown_link_raises_keyerror(self):
        with pytest.raises(KeyError):
            columnar_max_min_fair_rates({1: [("x", "y")]}, {LINKS[0]: 1.0})

    def test_no_flows(self):
        assert columnar_max_min_fair_rates({}, {LINKS[0]: 1.0}) == {}

    def test_duplicate_link_paths_fall_back_to_reference(self):
        flow_paths = {1: [LINKS[0], LINKS[0]], 2: [LINKS[0]]}
        capacities = {LINKS[0]: 9.0}
        assert columnar_max_min_fair_rates(
            flow_paths, capacities
        ) == max_min_fair_rates(flow_paths, capacities)


class TestFlowStore:
    CAPS = {("a", "b"): 8.0, ("b", "c"): 4.0, ("c", "d"): 16.0}

    def make(self, capacity=16):
        return FlowStore(self.CAPS, capacity=capacity)

    def test_add_remove_membership(self):
        store = self.make()
        store.add(spec(7, size=100.0), ("a", "b"))
        assert 7 in store and len(store) == 1
        store.remove(7)
        assert 7 not in store and len(store) == 0
        with pytest.raises(KeyError):
            store.row(7)

    def test_duplicate_add_rejected(self):
        store = self.make()
        store.add(spec(1), ("a", "b"))
        with pytest.raises(ValueError):
            store.add(spec(1), ("a", "b"))

    def test_unknown_link_rejected(self):
        store = self.make()
        with pytest.raises(KeyError):
            store.add(spec(1), ("a", "z"))

    def test_recompute_matches_reference(self):
        store = self.make()
        store.add(spec(1), ("a", "b", "c"))
        store.add(spec(2), ("a", "b"))
        store.add(spec(3), ("b", "c"))
        store.recompute()
        reference = max_min_fair_rates(
            {1: [("a", "b"), ("b", "c")], 2: [("a", "b")], 3: [("b", "c")]},
            self.CAPS,
        )
        for flow_id in (1, 2, 3):
            assert store.rate[store.row(flow_id)] == reference[flow_id]

    def test_empty_path_row_gets_sentinel_rate(self):
        store = self.make()
        store.add(spec(1), ("a",))
        store.recompute()
        assert store.rate[store.row(1)] == UNCONSTRAINED_RATE

    def test_compaction_is_stable(self):
        store = self.make(capacity=16)
        for flow_id in range(200):
            store.add(spec(flow_id, size=10.0 * (flow_id + 1)), ("a", "b"))
            if flow_id % 2:
                store.remove(flow_id)
        survivors = store.flow_ids()
        assert survivors == sorted(survivors)  # admission order kept
        # Columns still line up with their flows after compactions.
        for flow_id in survivors:
            assert store.remaining[store.row(flow_id)] == 10.0 * (flow_id + 1)
            assert store.path(flow_id) == ("a", "b")

    def test_explicit_compact_preserves_state(self):
        store = self.make()
        store.add(spec(1, size=5.0), ("a", "b", "c"))
        store.add(spec(2, size=6.0), ("b", "c"))
        store.add(spec(3, size=7.0), ("c", "d"))
        store.remove(2)
        store.set_has_installed_rules(1, True)
        store.set_blackhole_start(3, 1.25)
        store.compact()
        assert store.flow_ids() == [1, 3]
        assert store.has_installed_rules(1) is True
        assert store.has_installed_rules(3) is False
        assert store.blackhole_start(3) == 1.25
        assert store.path(1) == ("a", "b", "c")
        store.recompute()
        reference = max_min_fair_rates(
            {1: [("a", "b"), ("b", "c")], 3: [("c", "d")]}, self.CAPS
        )
        assert store.rate[store.row(1)] == reference[1]
        assert store.rate[store.row(3)] == reference[3]

    def test_set_path_shrink_and_grow(self):
        store = self.make()
        store.add(spec(1), ("a", "b", "c", "d"))
        store.set_path(1, ("a", "b"))  # shrinks in place
        assert store.path(1) == ("a", "b")
        assert store.flows_on_link(("b", "c")) == []
        store.set_path(1, ("b", "c", "d"))  # grows: fresh segment
        assert store.path(1) == ("b", "c", "d")
        assert store.flows_on_link(("b", "c")) == [1]
        assert store.flows_on_link(("a", "b")) == []

    def test_flows_on_link_admission_order(self):
        store = self.make()
        store.add(spec(5), ("a", "b"))
        store.add(spec(2), ("a", "b", "c"))
        store.add(spec(9), ("b", "c"))
        assert store.flows_on_link(("a", "b")) == [5, 2]
        assert store.flows_on_link(("b", "c")) == [2, 9]
        assert store.flows_on_link(("x", "y")) == []

    def test_advance_and_next_completion(self):
        store = self.make()
        store.add(spec(1, size=8.0), ("a", "b"))
        store.add(spec(2, size=16.0), ("a", "b"))
        store.recompute()  # 4.0 each
        eta, flow_id = store.next_completion(0.0)
        assert (eta, flow_id) == (16.0, 1)
        store.advance(16.0)
        assert store.remaining[store.row(1)] == 0.0
        assert store.remaining[store.row(2)] == 8.0

    def test_next_completion_tie_breaks_to_earliest_admitted(self):
        store = self.make()
        store.add(spec(10, size=8.0), ("a", "b"))
        store.add(spec(11, size=8.0), ("a", "b"))
        store.recompute()
        _eta, flow_id = store.next_completion(0.0)
        assert flow_id == 10

    def test_no_completion_without_rates(self):
        store = self.make()
        assert store.next_completion(0.0) == (math.inf, None)
        store.add(spec(1), ("a", "b"))
        assert store.next_completion(0.0) == (math.inf, None)

    def test_fail_link_zeroes_rates(self):
        store = self.make()
        store.add(spec(1), ("a", "b"))
        store.fail_link(("a", "b"))
        store.recompute()
        assert store.rate[store.row(1)] == 0.0

    def test_utilization_matches_reference(self):
        from repro.simulator import link_utilization

        store = self.make()
        store.add(spec(1), ("a", "b", "c"))
        store.add(spec(2), ("b", "c"))
        store.recompute()
        rows = {flow_id: store.row(flow_id) for flow_id in (1, 2)}
        reference = link_utilization(
            {1: [("a", "b"), ("b", "c")], 2: [("b", "c")]},
            {flow_id: float(store.rate[row]) for flow_id, row in rows.items()},
            self.CAPS,
        )
        assert store.utilization() == reference

    def test_te_views_are_admission_ordered_mappings(self):
        store = self.make()
        store.add(spec(3, size=5.0), ("a", "b"))
        store.add(spec(1, size=6.0), ("b", "c"))
        store.set_pending_activation(1, True)
        flows, paths, eligible, rates = store.te_views()
        assert isinstance(flows, FlowColumnView)
        assert list(paths) == [3, 1]
        assert paths[3] == ("a", "b")
        assert list(eligible) == [3] and len(eligible) == 1
        with pytest.raises(KeyError):
            eligible[1]
        assert rates.get(99, 0.0) == 0.0
        assert flows[1].size == 6.0


def _fat_tree_workload(burst=False, seed=5, flows_count=120):
    from repro.topology import FatTreeSpec, build_fat_tree, hosts

    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    hosts_ = hosts(graph)
    rng = np.random.default_rng(seed)
    flows = []
    for index in range(flows_count):
        start = (
            0.05 * (index // 30) if burst else float(rng.uniform(0.0, 1.5))
        )
        src, dst = rng.choice(len(hosts_), size=2, replace=False)
        flows.append(
            FlowSpec(
                source=hosts_[src],
                destination=hosts_[dst],
                size=float(rng.integers(int(1e5), int(5e6))),
                start_time=start,
            )
        )
    return graph, flows


def _run_backend(graph, flows, flow_state, **overrides):
    from repro.experiments.common import (
        QUICK_SCALE,
        installer_factory,
        te_simulation_config,
    )

    config = replace(
        te_simulation_config(QUICK_SCALE), flow_state=flow_state, **overrides
    )
    simulation = Simulation(
        graph,
        flows,
        installer_factory("tango", "pica8-p3290", seed=100),
        config,
    )
    metrics = simulation.run()
    records = sorted(
        (
            record.spec.flow_id,
            record.start_time,
            -1.0 if record.finish_time is None else record.finish_time,
            record.reroutes,
        )
        for record in metrics.flow_records()
    )
    return records, sorted(metrics.rits()), simulation.blackhole_time


class TestSimulationDifferential:
    """Columnar runs must reproduce object runs on whole simulations."""

    def test_arrival_completion_workload_exact(self):
        # A TE epoch far past max_time: pure arrival/completion dynamics.
        from repro.experiments.common import QUICK_SCALE, te_simulation_config

        graph, flows = _fat_tree_workload()
        base = te_simulation_config(QUICK_SCALE)
        quiet = {"te": replace(base.te, epoch=1e9)}
        assert _run_backend(graph, flows, "objects", **quiet) == _run_backend(
            graph, flows, "columnar", **quiet
        )

    def test_te_workload_exact(self):
        graph, flows = _fat_tree_workload()
        assert _run_backend(graph, flows, "objects") == _run_backend(
            graph, flows, "columnar"
        )

    def test_event_mode_exact(self):
        graph, flows = _fat_tree_workload()
        assert _run_backend(
            graph, flows, "objects", completion_mode="event"
        ) == _run_backend(graph, flows, "columnar", completion_mode="event")

    def test_link_failure_exact(self):
        graph, flows = _fat_tree_workload()
        failures = ((0.4, ("agg0", "core0")),)
        assert _run_backend(
            graph, flows, "objects", link_failures=failures
        ) == _run_backend(graph, flows, "columnar", link_failures=failures)

    def test_same_instant_bursts_exact(self):
        # Bursts exercise the columnar backend's batched same-instant
        # recompute (the deferral fast path) in both completion modes.
        graph, flows = _fat_tree_workload(burst=True)
        for mode in ("scan", "event"):
            assert _run_backend(
                graph, flows, "objects", completion_mode=mode
            ) == _run_backend(graph, flows, "columnar", completion_mode=mode)

    def test_invalid_flow_state_rejected(self):
        from repro.simulator import SimulationConfig

        with pytest.raises(ValueError):
            SimulationConfig(flow_state="rows")


class TestObjectsParityDigest:
    """``flow_state="objects"`` must stay byte-identical to the seed.

    Runs the chaos parity scenario in a fresh interpreter with the flow
    state forced to ``"objects"`` explicitly (not just defaulted) and
    checks the pinned seed digests — the refactor discipline's contract
    that the reference path never moves.
    """

    SCRIPT = _SCENARIO_SCRIPT.replace(
        "config = SimulationConfig(",
        'config = SimulationConfig(\n        flow_state="objects",',
    )

    def test_chaos_objects_matches_seed_digests(self):
        digests = json.loads(_run_script(self.SCRIPT, "chaos"))
        assert digests["result"] == CHAOS_RESULT_DIGEST
        assert digests["trace"] == CHAOS_TRACE_DIGEST
