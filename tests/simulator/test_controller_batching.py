"""Tests for the controller's per-switch FlowMod batching (install_paths)."""

import pytest

from repro.baselines import make_installer
from repro.simulator import SdnController
from repro.tcam import pica8_p3290, get_switch_model
from repro.topology import FatTreeSpec, PathProvider, build_fat_tree
from repro.traffic import FlowSpec


@pytest.fixture(scope="module")
def tree():
    return build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))


def make_controller(tree, scheme="naive"):
    return SdnController(
        tree,
        lambda name: make_installer(scheme, pica8_p3290()),
        control_rtt=1e-3,
    )


def assignments_for(tree, count):
    provider = PathProvider(tree)
    flows = [
        FlowSpec(
            source=f"host-0-0-{index % 2}",
            destination=f"host-{1 + index % 3}-1-0",
            size=1e6,
            start_time=0.0,
        )
        for index in range(count)
    ]
    return [
        (flow, provider.shortest_path(flow.source, flow.destination))
        for flow in flows
    ]


class TestInstallPaths:
    def test_outcomes_align_with_assignments(self, tree):
        controller = make_controller(tree)
        assignments = assignments_for(tree, 5)
        outcomes = controller.install_paths(assignments, now=0.0)
        assert len(outcomes) == 5
        for (flow, path), outcome in zip(assignments, outcomes):
            # One RIT per switch on the path (paths have 2 hosts).
            assert len(outcome.per_switch_rits) == len(path) - 2
            assert outcome.ready_time > 0.0
            assert controller.has_rules_for(flow.flow_id)

    def test_batching_shares_switch_queues(self, tree):
        """Flows crossing the same switch are serialized there: later batch
        members see queueing in their per-switch RITs."""
        controller = make_controller(tree)
        assignments = assignments_for(tree, 6)
        outcomes = controller.install_paths(assignments, now=0.0)
        firsts = outcomes[0].per_switch_rits
        lasts = outcomes[-1].per_switch_rits
        assert max(lasts) > max(firsts)

    def test_ready_time_is_max_over_switches(self, tree):
        controller = make_controller(tree)
        assignments = assignments_for(tree, 1)
        outcome = controller.install_paths(assignments, now=2.0)[0]
        agent_finish = max(
            agent.busy_until for agent in controller.agents.values()
        )
        assert outcome.ready_time == pytest.approx(
            agent_finish + controller.control_rtt / 2
        )

    def test_empty_batch(self, tree):
        controller = make_controller(tree)
        assert controller.install_paths([], now=0.0) == []

    def test_batch_reaches_reordering_installers(self, tree):
        """With a Tango backend, batched TE rules aggregate: the physical
        occupancy on shared switches is below the logical rule count."""
        controller = make_controller(tree, scheme="tango")
        assignments = assignments_for(tree, 8)
        controller.install_paths(assignments, now=0.0)
        edge = controller.agents["edge-0-0"].installer
        assert edge.logical_rule_count() >= edge.occupancy()
