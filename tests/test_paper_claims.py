"""Fast end-to-end checks of the paper's headline claims.

Each test is a minutes-to-seconds distillation of one sentence from the
paper's abstract or takeaways; the full regenerations live in benchmarks/.
"""

import numpy as np
import pytest

from repro.core import (
    GuaranteeSpec,
    HermesConfig,
    HermesInstaller,
    asic_overhead,
)
from repro.switchsim import FlowMod, SwitchAgent
from repro.tcam import Action, Rule, commodity_switch_models, pica8_p3290
from repro.traffic import MicrobenchConfig, generate_trace, seed_rules


class TestAbstractClaims:
    def test_five_ms_guarantee_under_five_percent_overhead(self):
        """'with less than 5% overheads, Hermes provides 5ms insertion
        guarantees' — holds on the Pica8 model."""
        overhead = asic_overhead(pica8_p3290(), GuaranteeSpec.milliseconds(5))
        assert overhead < 0.05

    def test_insertion_time_grows_with_occupancy_on_every_switch(self):
        """Section 2.1's premise, for all three commodity models."""
        for timing in commodity_switch_models():
            sparse = timing.base_insertion_latency(50)
            dense = timing.base_insertion_latency(
                min(1000, timing.capacity - 1)
            )
            assert dense > 5 * sparse, timing.name

    def test_guaranteed_inserts_respect_the_bound(self):
        """The core promise: every guaranteed-path insertion fits 5 ms,
        sustained at 1000 rules/s."""
        hermes = HermesInstaller(pica8_p3290())
        agent = SwitchAgent(hermes)
        time = 0.0
        for index in range(800):
            r = Rule.from_prefix(
                f"10.{(index // 200) % 200}.{index % 200}.0/24",
                100 + index,
                Action.output(1),
            )
            completed = agent.submit(FlowMod.add(r), at_time=time)
            if completed.result.used_guaranteed_path:
                assert completed.result.latency <= 5e-3
            time += 1e-3
        assert hermes.violations == 0
        assert len(hermes.rule_manager.migrations) > 0

    def test_deletion_and_modification_stay_cheap(self):
        """Section 2.1.1: deletes are fast; non-priority modifies constant."""
        hermes = HermesInstaller(pica8_p3290())
        r = Rule.from_prefix("10.0.0.0/24", 100, Action.output(1))
        hermes.apply(FlowMod.add(r))
        modify = hermes.apply(FlowMod.modify(r.rule_id, action=Action.drop()))
        delete = hermes.apply(FlowMod.delete(r.rule_id))
        assert modify.latency < 1e-3
        assert delete.latency < 1e-3


class TestComparativeClaims:
    def test_hermes_beats_raw_switch_by_over_80_percent_median(self):
        """'improvement of rule installation time by 80% to 94%'."""
        trace_config = MicrobenchConfig(arrival_rate=400, duration=1.0)
        from repro.experiments.common import replay_trace

        raw = replay_trace(
            generate_trace(trace_config),
            "naive",
            "pica8-p3290",
            prefill_rules=seed_rules(trace_config),
        )
        hermes = replay_trace(
            generate_trace(trace_config),
            "hermes",
            "pica8-p3290",
            hermes_config=HermesConfig(
                admission_control=False, lowest_priority_fastpath=False
            ),
            prefill_rules=seed_rules(trace_config),
        )
        raw_median = np.median(raw.response_times)
        hermes_median = np.median(hermes.response_times)
        assert (raw_median - hermes_median) / raw_median > 0.8

    def test_hermes_variation_is_small(self):
        """'we observe minor variations in the RIT provided by Hermes' —
        the p99/p50 spread stays within a small factor."""
        trace_config = MicrobenchConfig(arrival_rate=400, duration=1.0)
        from repro.experiments.common import replay_trace

        outcome = replay_trace(
            generate_trace(trace_config),
            "hermes",
            "pica8-p3290",
            hermes_config=HermesConfig(
                admission_control=False, lowest_priority_fastpath=False
            ),
            prefill_rules=seed_rules(trace_config),
        )
        p50 = np.median(outcome.response_times)
        p99 = np.percentile(outcome.response_times, 99)
        assert p99 / p50 < 20  # raw switches show orders of magnitude

    def test_benefits_grow_with_update_frequency(self):
        """Section 8.8: 'applications which require frequent modifications
        will yield significantly more benefits'."""
        from repro.experiments.common import replay_trace

        def median_gain(rate):
            trace_config = MicrobenchConfig(arrival_rate=rate, duration=1.0)
            raw = replay_trace(
                generate_trace(trace_config),
                "naive",
                "dell-8132f",
                prefill_rules=seed_rules(trace_config),
            )
            hermes = replay_trace(
                generate_trace(trace_config),
                "hermes",
                "dell-8132f",
                hermes_config=HermesConfig(
                    admission_control=False, lowest_priority_fastpath=False
                ),
                prefill_rules=seed_rules(trace_config),
            )
            return float(
                np.median(raw.response_times) - np.median(hermes.response_times)
            )

        assert median_gain(800) > median_gain(100)
