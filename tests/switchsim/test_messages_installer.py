"""Tests for FlowMod messages and the naive direct installer."""

import pytest

from repro.switchsim import DirectInstaller, FlowMod, FlowModCommand
from repro.tcam import Action, Prefix, Rule, TernaryMatch, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


class TestFlowModValidation:
    def test_add_requires_rule(self):
        with pytest.raises(ValueError):
            FlowMod(FlowModCommand.ADD)

    def test_delete_requires_rule_id(self):
        with pytest.raises(ValueError):
            FlowMod(FlowModCommand.DELETE)

    def test_modify_must_change_something(self):
        with pytest.raises(ValueError):
            FlowMod(FlowModCommand.MODIFY, rule_id=1)

    def test_changes_priority_flag(self):
        mod = FlowMod.modify(1, priority=9)
        assert mod.changes_priority
        assert not FlowMod.modify(1, action=Action.drop()).changes_priority

    def test_constructors(self):
        r = rule("10.0.0.0/8", 1)
        assert FlowMod.add(r).command is FlowModCommand.ADD
        assert FlowMod.delete(3).rule_id == 3


class TestDirectInstaller:
    @pytest.fixture
    def installer(self):
        return DirectInstaller(pica8_p3290(), capacity=128)

    def test_add_then_lookup(self, installer):
        r = rule("10.0.0.0/8", 5, port=3)
        result = installer.apply(FlowMod.add(r))
        assert result.latency > 0
        assert not result.used_guaranteed_path
        hit = installer.lookup(Prefix.from_string("10.1.1.1").network)
        assert hit.action.port == 3

    def test_delete(self, installer):
        r = rule("10.0.0.0/8", 5)
        installer.apply(FlowMod.add(r))
        installer.apply(FlowMod.delete(r.rule_id))
        assert installer.occupancy() == 0

    def test_modify_action_is_cheap(self, installer):
        for index in range(60):
            installer.apply(FlowMod.add(rule(f"10.{index}.0.0/16", 50)))
        r = rule("172.16.0.0/12", 40)
        add_latency = installer.apply(FlowMod.add(r)).latency
        modify_latency = installer.apply(
            FlowMod.modify(r.rule_id, action=Action.drop())
        ).latency
        assert modify_latency < add_latency

    def test_priority_modify_becomes_delete_insert(self, installer):
        for index in range(100):
            installer.apply(FlowMod.add(rule(f"10.{index}.0.0/16", 50)))
        r = rule("172.16.0.0/12", 5)
        installer.apply(FlowMod.add(r))
        plain = installer.apply(FlowMod.modify(r.rule_id, action=Action.drop())).latency
        repositioned = installer.apply(FlowMod.modify(r.rule_id, priority=90)).latency
        assert installer.table.get(r.rule_id).priority == 90
        # Re-positioning shifts the 100 resident rules: far costlier than an
        # in-place rewrite.
        assert repositioned > plain

    def test_priority_modify_preserves_other_fields(self, installer):
        r = rule("10.0.0.0/8", 5, port=4)
        installer.apply(FlowMod.add(r))
        installer.apply(FlowMod.modify(r.rule_id, priority=50))
        survivor = installer.table.get(r.rule_id)
        assert survivor.action.port == 4
        assert survivor.match == TernaryMatch.from_string("10.0.0.0/8")

    def test_batch_applies_in_order(self, installer):
        mods = [FlowMod.add(rule(f"10.{i}.0.0/16", i)) for i in range(5)]
        results = installer.apply_batch(mods)
        assert len(results) == 5
        assert installer.occupancy() == 5

    def test_advance_time_is_noop(self, installer):
        assert installer.advance_time(12.0) == 0.0

    def test_semantic_equality_helper(self):
        left = DirectInstaller(pica8_p3290(), capacity=16)
        right = DirectInstaller(pica8_p3290(), capacity=16)
        shared = rule("10.0.0.0/8", 5, port=1)
        left.apply(FlowMod.add(shared))
        right.apply(FlowMod.add(rule("10.0.0.0/8", 5, port=1)))
        probes = [Prefix.from_string("10.0.0.1").network, 0]
        assert left.lookup_semantics_equal(right, probes)
        right.apply(FlowMod.add(rule("0.0.0.0/0", 1, port=9)))
        assert not left.lookup_semantics_equal(right, probes)
