"""Tests for the multi-table pipeline and the serializing switch agent."""

import pytest

from repro.switchsim import (
    DirectInstaller,
    FlowMod,
    MissBehavior,
    Pipeline,
    PipelineStage,
    SwitchAgent,
)
from repro.tcam import Action, Prefix, Rule, TcamTable, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def key(address):
    return Prefix.from_string(address).network


class TestPipeline:
    def make_two_stage(self):
        shadow = TcamTable(pica8_p3290(), capacity=16, name="shadow")
        main = TcamTable(pica8_p3290(), capacity=256, name="main")
        pipeline = Pipeline(
            [
                PipelineStage("shadow", shadow, MissBehavior.GOTO_NEXT),
                PipelineStage("main", main, MissBehavior.DROP),
            ]
        )
        return pipeline, shadow, main

    def test_shadow_match_short_circuits(self):
        pipeline, shadow, main = self.make_two_stage()
        shadow.insert(rule("10.0.0.0/8", 1, port=1))
        main.insert(rule("10.0.0.0/8", 99, port=2))
        verdict = pipeline.process(key("10.1.1.1"))
        assert verdict.stage == "shadow"
        assert verdict.rule.action.port == 1

    def test_miss_falls_through_to_main(self):
        pipeline, shadow, main = self.make_two_stage()
        main.insert(rule("10.0.0.0/8", 5, port=2))
        verdict = pipeline.process(key("10.1.1.1"))
        assert verdict.stage == "main"
        assert verdict.rule.action.port == 2

    def test_full_miss_drops(self):
        pipeline, _, _ = self.make_two_stage()
        verdict = pipeline.process(key("192.168.0.1"))
        assert verdict.dropped and not verdict.matched

    def test_to_controller_miss(self):
        table = TcamTable(pica8_p3290(), capacity=4)
        pipeline = Pipeline(
            [PipelineStage("only", table, MissBehavior.TO_CONTROLLER)]
        )
        verdict = pipeline.process(0)
        assert verdict.punted and not verdict.matched

    def test_goto_next_off_the_end_drops(self):
        table = TcamTable(pica8_p3290(), capacity=4)
        pipeline = Pipeline([PipelineStage("only", table, MissBehavior.GOTO_NEXT)])
        assert pipeline.process(0).dropped

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_duplicate_stage_names_rejected(self):
        table = TcamTable(pica8_p3290(), capacity=4)
        with pytest.raises(ValueError):
            Pipeline([PipelineStage("x", table), PipelineStage("x", table)])

    def test_stage_accessor(self):
        pipeline, shadow, _ = self.make_two_stage()
        assert pipeline.stage("shadow").table is shadow
        with pytest.raises(KeyError):
            pipeline.stage("bogus")


class TestSwitchAgent:
    @pytest.fixture
    def agent(self):
        return SwitchAgent(DirectInstaller(pica8_p3290(), capacity=256), name="s1")

    def test_single_action_timing(self, agent):
        completed = agent.submit(FlowMod.add(rule("10.0.0.0/8", 5)), at_time=1.0)
        assert completed.submit_time == 1.0
        assert completed.start_time == 1.0
        assert completed.finish_time > 1.0
        assert completed.response_time == pytest.approx(completed.result.latency)

    def test_burst_queues_serially(self, agent):
        first = agent.submit(FlowMod.add(rule("10.0.0.0/8", 5)), at_time=0.0)
        second = agent.submit(FlowMod.add(rule("11.0.0.0/8", 5)), at_time=0.0)
        assert second.start_time == pytest.approx(first.finish_time)
        assert second.response_time > second.result.latency / 2

    def test_idle_gap_resets_queue(self, agent):
        agent.submit(FlowMod.add(rule("10.0.0.0/8", 5)), at_time=0.0)
        later = agent.submit(FlowMod.add(rule("11.0.0.0/8", 5)), at_time=100.0)
        assert later.start_time == 100.0

    def test_batch_executes_back_to_back(self, agent):
        mods = [FlowMod.add(rule(f"10.{i}.0.0/16", 5)) for i in range(4)]
        completed = agent.submit_batch(mods, at_time=0.0)
        for earlier, later in zip(completed, completed[1:]):
            assert later.start_time == pytest.approx(earlier.finish_time)
        assert agent.busy_until == pytest.approx(completed[-1].finish_time)

    def test_history_and_latencies(self, agent):
        agent.submit(FlowMod.add(rule("10.0.0.0/8", 5)))
        agent.submit(FlowMod.add(rule("11.0.0.0/8", 5)))
        assert len(agent.history()) == 2
        assert len(agent.install_latencies()) == 2
        assert agent.stats.actions == 2

    def test_lookup_delegates(self, agent):
        agent.submit(FlowMod.add(rule("10.0.0.0/8", 5, port=8)))
        assert agent.lookup(key("10.0.0.1")).action.port == 8
