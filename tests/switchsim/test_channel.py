"""Tests for the control channel: naive equivalence, retry, dedup, breaker."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FlowModFault
from repro.switchsim import (
    ChannelConfig,
    DirectInstaller,
    FlowMod,
    NaiveChannel,
    ResilientChannel,
    SwitchAgent,
)
from repro.tcam import Action, Rule, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def make_agent(injector=None, name="sw"):
    installer = DirectInstaller(pica8_p3290(), injector=injector)
    return SwitchAgent(installer, name=name, injector=injector)


def occupancy(agent):
    return len(agent.installer.table)


class TestChannelConfig:
    def test_defaults_valid(self):
        ChannelConfig()

    @pytest.mark.parametrize(
        "bad",
        [
            {"timeout": 0.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"jitter": 1.5},
            {"breaker_threshold": 0},
            {"breaker_cooldown": -1.0},
        ],
    )
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            ChannelConfig(**bad)


class TestNaiveChannel:
    def test_matches_direct_submit_without_injector(self):
        direct_agent = make_agent()
        channel_agent = make_agent()
        channel = NaiveChannel(channel_agent)
        for index in range(8):
            mod = FlowMod.add(rule(f"10.0.{index}.0/24", 5))
            expected = direct_agent.submit(mod, at_time=index * 0.01)
            outcome = channel.send(mod, at_time=index * 0.01)
            assert outcome.delivered
            assert outcome.attempts == 1
            assert outcome.done_time == expected.finish_time
            assert outcome.completed.result.latency == expected.result.latency
        assert occupancy(direct_agent) == occupancy(channel_agent)

    def test_drop_loses_the_install_forever(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=0.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent()
        channel = NaiveChannel(agent, injector)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert not outcome.delivered
        assert not outcome.applied
        assert occupancy(agent) == 0
        assert channel.stats.give_ups == 1

    def test_ack_loss_still_applies(self):
        # Fire-and-forget has no acks: a "drop-ack" verdict is a delivery.
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=1.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent()
        channel = NaiveChannel(agent, injector)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert outcome.applied
        assert occupancy(agent) == 1


def resilient(agent, injector, **overrides):
    config = ChannelConfig(**{"jitter": 0.0, **overrides})
    return ResilientChannel(agent, injector, config=config)


class TestResilientChannel:
    def test_no_faults_single_attempt(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        agent = make_agent(injector)
        channel = resilient(agent, injector)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert outcome.delivered and outcome.attempts == 1 and outcome.retries == 0
        assert occupancy(agent) == 1

    def test_retries_until_delivered(self):
        # drop=0.7 with pure forward loss: every send must still land.
        plan = FaultPlan(flowmod=FlowModFault(drop=0.7, ack_loss_fraction=0.0))
        injector = FaultInjector(plan, seed=4)
        agent = make_agent(injector)
        channel = resilient(agent, injector, max_retries=64, breaker_threshold=128)
        for index in range(24):
            outcome = channel.send(
                FlowMod.add(rule(f"10.0.{index}.0/24", 5)), at_time=index * 0.5
            )
            assert outcome.delivered
        assert occupancy(agent) == 24
        assert channel.stats.retries > 0
        assert channel.stats.retries == injector.log.count("flowmod-drop")

    def test_lost_ack_never_double_installs(self):
        # Every delivery applies but loses its ack; the retransmission hits
        # the xid cache, so exactly one TCAM entry appears per send.  The
        # sender still gives up (it never hears), but applied=True records
        # that the switch did the work.
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=1.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = resilient(
            agent, injector, max_retries=5, breaker_threshold=128
        )
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert not outcome.delivered
        assert outcome.applied  # installed on attempt 1, acks all lost
        assert occupancy(agent) == 1
        assert agent.stats.deduplicated == 5  # every retry absorbed

    def test_duplicate_delivery_absorbed(self):
        plan = FaultPlan(
            flowmod=FlowModFault(drop=0.0, duplicate=1.0)
        )
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = resilient(agent, injector)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert outcome.delivered
        assert occupancy(agent) == 1
        assert agent.stats.deduplicated == 1

    def test_gives_up_after_retry_budget(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=0.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = resilient(agent, injector, max_retries=3, breaker_threshold=128)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert not outcome.delivered
        assert outcome.attempts == 4  # 1 + max_retries
        assert channel.stats.give_ups == 1
        assert injector.log.count("give-up") == 1

    def test_done_time_includes_backoff(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=0.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = resilient(agent, injector, max_retries=2, breaker_threshold=128)
        outcome = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=1.0)
        assert outcome.done_time > 1.0 + channel.config.timeout

    def test_batch_send_and_dedup(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=1.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = resilient(agent, injector, max_retries=4, breaker_threshold=128)
        mods = [FlowMod.add(rule(f"10.0.{i}.0/24", 5)) for i in range(3)]
        outcome = channel.send_batch(mods, at_time=0.0)
        assert outcome.applied and not outcome.delivered
        assert occupancy(agent) == 3  # batch applied exactly once


class TestCircuitBreaker:
    def _drop_all(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=0.0))
        return FaultInjector(plan, seed=0)

    def test_opens_after_threshold_and_fast_fails(self):
        injector = self._drop_all()
        agent = make_agent(injector)
        opened_at = []
        channel = ResilientChannel(
            agent,
            injector,
            config=ChannelConfig(
                jitter=0.0, max_retries=10, breaker_threshold=3, breaker_cooldown=5.0
            ),
            on_breaker_open=opened_at.append,
        )
        first = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert not first.delivered
        assert channel.breaker_open
        assert channel.stats.breaker_opens == 1
        assert len(opened_at) == 1
        # While open, sends fast-fail without touching the network.
        drops_before = injector.log.count("flowmod-drop")
        second = channel.send(
            FlowMod.add(rule("10.0.1.0/24", 5)), at_time=first.done_time + 0.01
        )
        assert second.attempts == 0 and not second.delivered
        assert channel.stats.fast_fails == 1
        assert injector.log.count("flowmod-drop") == drops_before

    def test_half_open_recovery(self):
        # Trip the breaker under total loss, then heal the channel: the
        # first send after the cooldown probes and succeeds, closing it.
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0, ack_loss_fraction=0.0))
        injector = FaultInjector(plan, seed=0)
        agent = make_agent(injector)
        channel = ResilientChannel(
            agent,
            injector,
            config=ChannelConfig(
                jitter=0.0, max_retries=10, breaker_threshold=3, breaker_cooldown=1.0
            ),
        )
        tripped = channel.send(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert channel.breaker_open
        injector.plan = FaultPlan()  # network heals
        probe_time = tripped.done_time + channel.config.breaker_cooldown + 1.0
        outcome = channel.send(FlowMod.add(rule("10.0.1.0/24", 5)), at_time=probe_time)
        assert outcome.delivered
        assert not channel.breaker_open
        assert occupancy(agent) == 1
