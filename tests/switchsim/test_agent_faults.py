"""Tests for agent-side faults (stalls, crashes) and stats accounting."""

import pytest

from repro.faults import AgentCrash, AgentStall, FaultInjector, FaultPlan
from repro.switchsim import (
    AgentDownError,
    AgentStats,
    DirectInstaller,
    FlowMod,
    SwitchAgent,
)
from repro.tcam import Action, Rule, pica8_p3290


def rule(prefix, priority):
    return Rule.from_prefix(prefix, priority, Action.output(1))


def make_agent(plan=None, seed=0, name="sw"):
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    return SwitchAgent(DirectInstaller(pica8_p3290()), name=name, injector=injector)


class TestStats:
    def test_background_time_accumulates(self):
        agent = make_agent()
        agent.submit(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        assert agent.stats.background_time == 0.0  # DirectInstaller: none
        # And the recording path itself folds it in:
        stats = AgentStats()
        completed = agent.history()[0]
        stats.record(completed, background_time=0.25)
        stats.record(completed, background_time=0.5)
        assert stats.background_time == pytest.approx(0.75)
        assert stats.actions == 2

    def test_batch_charges_background_once(self):
        agent = make_agent()
        mods = [FlowMod.add(rule(f"10.0.{i}.0/24", 5)) for i in range(3)]
        agent.submit_batch(mods, at_time=0.0)
        assert agent.stats.actions == 3
        assert agent.stats.background_time == 0.0


class TestStalls:
    def test_stall_window_delays_start(self):
        plan = FaultPlan(stall=AgentStall(windows=((1.0, 1.5),)))
        agent = make_agent(plan)
        completed = agent.submit(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=1.2)
        assert completed.start_time >= 1.5  # held until the window closes
        assert agent.stats.stalls == 1
        assert agent.stats.stall_time == pytest.approx(0.3)

    def test_no_stall_outside_window(self):
        plan = FaultPlan(stall=AgentStall(windows=((1.0, 1.5),)))
        agent = make_agent(plan)
        completed = agent.submit(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=2.0)
        assert completed.start_time == pytest.approx(2.0)
        assert agent.stats.stalls == 0


class TestCrashes:
    def test_submissions_lost_while_down(self):
        plan = FaultPlan(crash=AgentCrash(times=(1.0,), restart_delay=0.5))
        agent = make_agent(plan)
        with pytest.raises(AgentDownError):
            agent.submit(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=1.2)
        assert agent.stats.crash_losses == 1
        assert len(agent.installer.table) == 0

    def test_table_survives_restart(self):
        plan = FaultPlan(crash=AgentCrash(times=(1.0,), restart_delay=0.5))
        agent = make_agent(plan)
        agent.submit(FlowMod.add(rule("10.0.0.0/24", 5)), at_time=0.0)
        with pytest.raises(AgentDownError):
            agent.submit(FlowMod.add(rule("10.0.1.0/24", 5)), at_time=1.1)
        completed = agent.submit(FlowMod.add(rule("10.0.2.0/24", 5)), at_time=2.0)
        assert completed is not None
        assert len(agent.installer.table) == 2  # pre-crash rule still there
