"""Shared test configuration.

Hypothesis runs derandomized so the suite is deterministic: property tests
explore the same example set on every run (CI stability), while still
covering the full shrink-search space.  Set ``HYPOTHESIS_PROFILE=explore``
to hunt for new counterexamples with fresh randomness.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("explore", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
