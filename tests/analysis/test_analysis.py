"""Tests for CDF/percentile helpers and result rendering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    ExperimentResult,
    cdf_at,
    empirical_cdf,
    format_cell,
    increase_ratios,
    median_improvement,
    percentile_summary,
    render_table,
)


class TestEmpiricalCdf:
    def test_sorted_and_normalized(self):
        xs, ys = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert ys[-1] == 1.0
        assert ys[0] == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_cdf_is_monotone(self, values):
        xs, ys = empirical_cdf(values)
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert all(b >= a for a, b in zip(xs, xs[1:]))


class TestCdfAt:
    def test_probe_fractions(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, [0, 2, 10]) == [0.0, 0.5, 1.0]


class TestPercentiles:
    def test_summary_keys(self):
        summary = percentile_summary(range(1, 101), (50, 99))
        assert summary[50] == pytest.approx(50.5)
        assert summary[99] == pytest.approx(99.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_summary([])


class TestMedianImprovement:
    def test_improvement_fraction(self):
        assert median_improvement([10, 10], [2, 2]) == pytest.approx(0.8)

    def test_regression_is_negative(self):
        assert median_improvement([2, 2], [10, 10]) < 0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            median_improvement([0, 0], [1, 1])


class TestIncreaseRatios:
    def test_shared_keys_only(self):
        baseline = {1: 2.0, 2: 4.0, 3: 1.0}
        subject = {1: 4.0, 2: 4.0, 99: 7.0}
        assert sorted(increase_ratios(baseline, subject)) == [1.0, 2.0]

    def test_zero_baseline_skipped(self):
        assert increase_ratios({1: 0.0}, {1: 5.0}) == []


class TestRendering:
    def test_format_cell_floats(self):
        assert format_cell(2.345678) == "2.346"
        assert format_cell(0.0000123) == "1.23e-05"
        assert format_cell(0) == "0"
        assert format_cell("abc") == "abc"
        assert format_cell(True) == "True"

    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")

    def test_render_empty_table(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_experiment_result_render_and_column(self):
        result = ExperimentResult(
            experiment_id="Table X",
            title="demo",
            headers=["name", "value"],
            rows=[("a", 1), ("b", 2)],
            notes="a note",
        )
        rendered = result.render()
        assert "Table X" in rendered and "a note" in rendered
        assert result.column("value") == [1, 2]
        with pytest.raises(ValueError):
            result.column("missing")
