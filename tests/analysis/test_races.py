"""SimRace: the schedule-order race sanitizer and its CLI.

Covers the happens-before model (same-``(time, tier)`` conflicts race,
anything else does not), witness content, pragma suppression, the
instrumentation taps (table listener, RNG proxy value-identity), the
planted-race fixture, and — the acceptance-critical one — that a
sanitizer-on run's metrics are byte-identical to sanitizer-off for the
canonical chaos scenario (observation must not perturb the simulation).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.races import (
    SCHEDULE_ORDER_RACE,
    RaceSanitizer,
    run_fixture,
)
from repro.engine.scheduler import TIER_COMPLETION, EventScheduler

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PLANTED_RACE = os.path.join(FIXTURES, "planted_race.py")


def _drive(schedule_plan, access_plan):
    """Run a scheduler over ``schedule_plan`` = [(time, kind, tier)] with
    ``access_plan`` = {kind: [(mode, key)]} applied after each pop."""
    scheduler = EventScheduler()
    sanitizer = RaceSanitizer()
    sanitizer.watch_scheduler(scheduler)
    for time, kind, tier in schedule_plan:
        scheduler.schedule(time, kind, tier=tier)
    while scheduler:
        event = scheduler.pop()
        scheduler.clock.advance_to(event.time)
        for mode, key in access_plan.get(event.kind, ()):
            if mode == "read":
                sanitizer.record_read(key)
            else:
                sanitizer.record_write(key)
    sanitizer.finish()
    return sanitizer


class TestHappensBefore:
    def test_same_instant_write_write_conflict_is_a_race(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (1.0, "b", 1)],
            {"a": [("write", "k")], "b": [("write", "k")]},
        )
        assert len(sanitizer.races) == 1
        race = sanitizer.races[0]
        assert race.key == "k"
        assert race.time == 1.0 and race.tier == 1
        assert {race.first.kind, race.second.kind} == {"a", "b"}

    def test_write_read_conflict_is_a_race(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (1.0, "b", 1)],
            {"a": [("write", "k")], "b": [("read", "k")]},
        )
        assert len(sanitizer.races) == 1
        accesses = {
            sanitizer.races[0].first.access,
            sanitizer.races[0].second.access,
        }
        assert accesses == {"write", "read"}

    def test_read_read_is_not_a_race(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (1.0, "b", 1)],
            {"a": [("read", "k")], "b": [("read", "k")]},
        )
        assert sanitizer.races == []

    def test_different_tiers_are_ordered_not_racing(self):
        sanitizer = _drive(
            [(1.0, "a", TIER_COMPLETION), (1.0, "b", 1)],
            {"a": [("write", "k")], "b": [("write", "k")]},
        )
        assert sanitizer.races == []

    def test_different_instants_are_ordered_not_racing(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (2.0, "b", 1)],
            {"a": [("write", "k")], "b": [("write", "k")]},
        )
        assert sanitizer.races == []

    def test_disjoint_keys_do_not_race(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (1.0, "b", 1)],
            {"a": [("write", "k1")], "b": [("write", "k2")]},
        )
        assert sanitizer.races == []

    def test_clock_attribution_never_races(self):
        # The instant-opening event records the clock write; its
        # same-instant peers must not conflict with it on 'clock'.
        sanitizer = _drive([(1.0, "a", 1), (1.0, "b", 1), (1.0, "c", 1)], {})
        assert sanitizer.races == []

    def test_witnesses_name_sites_and_seq(self):
        sanitizer = _drive(
            [(3.0, "early", 1), (3.0, "late", 1)],
            {"early": [("write", "k")], "late": [("write", "k")]},
        )
        race = sanitizer.races[0]
        assert race.first.seq < race.second.seq
        assert __file__.rstrip("c") in race.first.site
        rendered = str(race)
        assert "'early'" in rendered and "'late'" in rendered and "'k'" in rendered


class TestExternalAttribution:
    def test_external_work_does_not_race_with_events(self):
        scheduler = EventScheduler()
        sanitizer = RaceSanitizer()
        sanitizer.watch_scheduler(scheduler)
        scheduler.schedule(1.0, "evt")
        event = scheduler.pop()
        scheduler.clock.advance_to(event.time)
        sanitizer.record_write("k")
        # Loop-ordered work at the same instant touches the same key.
        sanitizer.external("arrival")
        sanitizer.record_write("k")
        sanitizer.finish()
        assert sanitizer.races == []


class TestSuppression:
    def test_race_pragma_at_call_site_suppresses(self):
        scheduler = EventScheduler()
        sanitizer = RaceSanitizer()
        sanitizer.watch_scheduler(scheduler)
        # race: allow(schedule-order-race) -- deliberate: this test verifies suppression
        scheduler.schedule(1.0, "a")
        scheduler.schedule(1.0, "b")
        for _ in range(2):
            event = scheduler.pop()
            scheduler.clock.advance_to(event.time)
            sanitizer.record_write("k")
        sanitizer.finish()
        assert sanitizer.races == []
        assert len(sanitizer.suppressed) == 1
        assert sanitizer.suppressed[0].key == "k"

    def test_unsuppressed_site_still_reports(self):
        scheduler = EventScheduler()
        sanitizer = RaceSanitizer()
        sanitizer.watch_scheduler(scheduler)
        scheduler.schedule(1.0, "a")
        scheduler.schedule(1.0, "b")
        for _ in range(2):
            event = scheduler.pop()
            scheduler.clock.advance_to(event.time)
            sanitizer.record_write("k")
        sanitizer.finish()
        assert len(sanitizer.races) == 1


class TestTaps:
    def test_table_tap_records_mutations_through_listener_seam(self):
        from repro.tcam.prefix import Prefix
        from repro.tcam.rule import Action, Rule
        from repro.tcam.switch_models import pica8_p3290
        from repro.tcam.table import TcamTable

        sanitizer = RaceSanitizer()
        table = TcamTable(pica8_p3290(), name="s1")
        sanitizer.watch_table(table, "table:s1")
        sanitizer.external("setup")
        rule = Rule.from_prefix(Prefix(10 << 24, 8), 5, Action.output(1))
        table.insert(rule)
        assert "table:s1" in sanitizer._current.writes
        sanitizer.external("reader")
        table.lookup(10 << 24)
        assert "table:s1" in sanitizer._current.reads

    def test_rng_tap_is_value_identical(self):
        from repro.engine.rng import RngStreams

        plain = RngStreams(42)
        watched = RngStreams(42)
        sanitizer = RaceSanitizer()
        sanitizer.watch_rng(watched)
        sanitizer.external("draws")
        a = plain.stream("latency")
        b = watched.stream("latency")
        assert list(a.integers(0, 100, size=16)) == list(
            b.integers(0, 100, size=16)
        )
        assert a.normal() == b.normal()
        assert "rng:latency" in sanitizer._current.writes

    def test_sanitizer_repr_counts(self):
        sanitizer = _drive(
            [(1.0, "a", 1), (1.0, "b", 1)],
            {"a": [("write", "k")], "b": [("write", "k")]},
        )
        assert "races=1" in repr(sanitizer)


class TestPlantedFixture:
    def test_planted_race_is_detected_with_witness_pair(self):
        sanitizer = run_fixture(PLANTED_RACE)
        assert len(sanitizer.races) == 1
        race = sanitizer.races[0]
        assert race.key == "table:s1"
        assert {race.first.kind, race.second.kind} == {
            "install-left",
            "install-right",
        }
        assert "planted_race.py" in race.first.site
        assert "planted_race.py" in race.second.site

    def test_rule_name_constant(self):
        assert SCHEDULE_ORDER_RACE == "schedule-order-race"


# ----------------------------------------------------------------------
# Cross-process: observation must not perturb the simulation
# ----------------------------------------------------------------------
_CHAOS_SCRIPT = r"""
import hashlib
import json
import sys

import numpy as np

from repro.analysis.races import RaceSanitizer
from repro.baselines import make_installer
from repro.experiments.common import default_hermes_config
from repro.faults import FaultInjector, FaultPlan, FlowModFault
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.switchsim import ChannelConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs

graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
flows = flows_of(
    generate_jobs(
        hosts(graph), job_count=4, arrival_rate=6.0,
        rng=np.random.default_rng(13),
    )
)
plan = FaultPlan(flowmod=FlowModFault(drop=0.1, ack_loss_fraction=0.3))
injector = FaultInjector(plan=plan, seed=13)
config = SimulationConfig(
    te=TeAppConfig(epoch=0.25),
    baseline_occupancy=200,
    max_time=2.5,
    channel="resilient",
    channel_config=ChannelConfig(),
    fault_plan=plan,
    fault_seed=13,
)
timing = get_switch_model("pica8-p3290")
hermes_config = default_hermes_config()
factory = lambda name: make_installer(
    "hermes", timing, hermes_config=hermes_config, injector=injector
)
simulation = Simulation(graph, flows, factory, config, injector=injector)
races = -1
if sys.argv[1] == "on":
    sanitizer = RaceSanitizer()
    sanitizer.watch_simulation(simulation)
metrics = simulation.run()
if sys.argv[1] == "on":
    races = len(sanitizer.finish())
payload = json.dumps(
    [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
).encode()
print(json.dumps(
    {"digest": hashlib.sha256(payload).hexdigest(), "races": races}
))
"""


def _run_chaos(mode: str) -> dict:
    import json

    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = (
        os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHAOS_SCRIPT, mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout.strip())


class TestObservationDoesNotPerturb:
    def test_sanitizer_on_metrics_equal_sanitizer_off(self):
        on = _run_chaos("on")
        off = _run_chaos("off")
        assert on["digest"] == off["digest"]
        assert on["races"] == 0
        assert off["races"] == -1  # sanitizer never constructed


class TestRacesCli:
    def _cli(self, *args):
        env = dict(os.environ)
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = (
            os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", "races", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_planted_fixture_fails_with_witnesses(self):
        result = self._cli(PLANTED_RACE)
        assert result.returncode == 1
        assert "schedule-order race" in result.stdout
        assert "table:s1" in result.stdout
        assert "install-left" in result.stdout
        assert "install-right" in result.stdout

    def test_demo_scenario_is_race_free(self):
        result = self._cli("demo")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 race(s)" in result.stdout

    def test_unknown_scenario_is_usage_error(self):
        result = self._cli("no-such-scenario")
        assert result.returncode == 2
