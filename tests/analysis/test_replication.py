"""Tests for the multi-seed replication helpers."""

import pytest

from repro.analysis import SeedSweep, replicate, replicate_many


class TestSeedSweep:
    def test_mean_and_std(self):
        sweep = SeedSweep(values=(1.0, 2.0, 3.0), seeds=(0, 1, 2))
        assert sweep.mean == pytest.approx(2.0)
        assert sweep.std == pytest.approx(1.0)

    def test_single_seed_degenerate(self):
        sweep = SeedSweep(values=(5.0,), seeds=(0,))
        assert sweep.std == 0.0
        assert sweep.confidence_interval() == (5.0, 5.0)

    def test_confidence_interval_contains_mean(self):
        sweep = SeedSweep(values=(1.0, 2.0, 3.0, 4.0), seeds=(0, 1, 2, 3))
        low, high = sweep.confidence_interval(0.95)
        assert low < sweep.mean < high

    def test_wider_level_wider_interval(self):
        sweep = SeedSweep(values=(1.0, 2.0, 3.0, 4.0), seeds=(0, 1, 2, 3))
        narrow = sweep.confidence_interval(0.80)
        wide = sweep.confidence_interval(0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_invalid_level(self):
        sweep = SeedSweep(values=(1.0, 2.0), seeds=(0, 1))
        with pytest.raises(ValueError):
            sweep.confidence_interval(1.0)

    def test_str_mentions_sample_size(self):
        assert "n=2" in str(SeedSweep(values=(1.0, 2.0), seeds=(0, 1)))


class TestReplicate:
    def test_calls_metric_per_seed(self):
        sweep = replicate(lambda seed: float(seed * 2), seeds=[1, 2, 3])
        assert sweep.values == (2.0, 4.0, 6.0)
        assert sweep.seeds == (1, 2, 3)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, seeds=[])

    def test_replicate_many(self):
        sweeps = replicate_many(
            lambda seed: {"a": seed, "b": seed * 10}, seeds=[1, 2]
        )
        assert sweeps["a"].values == (1.0, 2.0)
        assert sweeps["b"].values == (10.0, 20.0)

    def test_replicate_many_empty_rejected(self):
        with pytest.raises(ValueError):
            replicate_many(lambda seed: {}, seeds=[])

    def test_replication_of_actual_experiment(self):
        """Replicating a tiny real metric across seeds works end to end."""
        from repro.tcam import Action, Rule, TcamTable, pica8_p3290
        import numpy as np

        def metric(seed: int) -> float:
            table = TcamTable(
                pica8_p3290(), capacity=32, rng=np.random.default_rng(seed)
            )
            latency = 0.0
            for index in range(8):
                latency += table.insert(
                    Rule.from_prefix(f"10.{index}.0.0/16", 50, Action.output(1))
                ).latency
            return latency

        sweep = replicate(metric, seeds=range(5))
        assert sweep.mean > 0
        assert sweep.std > 0  # lognormal noise differs across seeds
