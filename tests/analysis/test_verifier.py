"""Mutation self-tests for the ruleset verifier.

Each test seeds one deliberate corruption into a known-good table pair (or
move plan) and asserts the matching checker reports *exactly* the expected
violation kind — no more, no less.  The clean fixtures double as the
no-false-positive check the verifier's severity model promises.
"""

import pytest

from repro.analysis.verifier import (
    find_duplicate_entries,
    find_priority_inversions,
    find_shadowed_rules,
    find_unreachable_rules,
    lookup_order,
    semantic_diff,
    verify_installer,
    verify_moveplan,
    verify_partition,
)
from repro.analysis.violations import (
    DUPLICATE_ENTRY,
    EQUIVALENCE_MISMATCH,
    MOVEPLAN_INVERSION,
    MOVEPLAN_OVERFLOW,
    MOVEPLAN_SLOT_CONFLICT,
    PRIORITY_INVERSION,
    SHADOWED_RULE,
    UNREACHABLE_RULE,
    Violation,
)
from repro.tcam.moveplan import PlacementPlan, plan_batch_placement
from repro.tcam.rule import Action, Rule
from repro.tcam.ternary import TernaryMatch


def R(pattern: str, priority: int, port: int = 1, rule_id: int = 0) -> Rule:
    """A width-8 rule from a bit pattern, with an explicit id."""
    return Rule(
        match=TernaryMatch.from_string(pattern),
        priority=priority,
        action=Action.output(port),
        rule_id=rule_id,
    )


def kinds(violations):
    return [violation.kind for violation in violations]


def clean_pair():
    """A correctly partitioned pair: shadow dominates every overlap."""
    shadow = [R("1010****", 100, port=2, rule_id=1)]
    main = [
        R("10******", 50, port=1, rule_id=2),
        R("0*******", 60, port=3, rule_id=3),
    ]
    return shadow, main


class TestPriorityInversion:
    def test_clean_pair_has_none(self):
        shadow, main = clean_pair()
        assert find_priority_inversions(shadow, main) == []

    def test_swapped_priorities_caught(self):
        # Mutation: hoist the overlapping main rule above the shadow rule.
        shadow, main = clean_pair()
        main[0] = main[0].with_priority(150)
        violations = find_priority_inversions(shadow, main)
        assert kinds(violations) == [PRIORITY_INVERSION]
        assert set(violations[0].rule_ids) == {1, 2}
        # The witness key really is masked: it matches both rules.
        witness = violations[0].witness
        assert shadow[0].match.matches(witness)
        assert main[0].match.matches(witness)

    def test_equal_priority_is_not_an_inversion(self):
        shadow = [R("1010****", 100, rule_id=1)]
        main = [R("10******", 100, rule_id=2)]
        assert find_priority_inversions(shadow, main) == []

    def test_disjoint_high_priority_main_rule_is_fine(self):
        shadow = [R("1010****", 100, rule_id=1)]
        main = [R("0*******", 900, rule_id=2)]
        assert find_priority_inversions(shadow, main) == []


class TestDuplicateEntries:
    def test_clean_pair_has_none(self):
        shadow, main = clean_pair()
        assert find_duplicate_entries(shadow, main) == []

    def test_rule_resident_in_both_tables_caught(self):
        # Mutation: a migration wrote the rule down without clearing the
        # shadow copy.
        shadow, main = clean_pair()
        main.append(shadow[0])
        violations = find_duplicate_entries(shadow, main)
        assert kinds(violations) == [DUPLICATE_ENTRY]
        assert violations[0].rule_ids == (1,)
        assert violations[0].table == "shadow+main"

    def test_double_entry_within_one_table_caught(self):
        shadow, main = clean_pair()
        main.append(main[0])
        violations = find_duplicate_entries(shadow, main)
        assert kinds(violations) == [DUPLICATE_ENTRY]
        assert violations[0].table == "main+main"


class TestSemanticDiff:
    def test_identical_tables_are_equivalent(self):
        shadow, main = clean_pair()
        system = lookup_order(shadow, main)
        assert semantic_diff(system, list(system)) == []

    def test_dropped_rule_caught(self):
        # Mutation: the system lost the shadow rule (a silent write
        # failure); the reference still answers with it.
        shadow, main = clean_pair()
        reference = lookup_order(shadow, main)
        violations = semantic_diff(lookup_order([], main), reference)
        assert kinds(violations) == [EQUIVALENCE_MISMATCH]
        # The witness key is one the dropped rule decided differently.
        witness = violations[0].witness
        assert shadow[0].match.matches(witness)

    def test_action_mutation_caught(self):
        shadow, main = clean_pair()
        reference = lookup_order(shadow, main)
        corrupted = [shadow[0]] + [
            Rule(
                match=main[0].match,
                priority=main[0].priority,
                action=Action.output(7),
                rule_id=main[0].rule_id,
            ),
            main[1],
        ]
        violations = semantic_diff(corrupted, reference)
        assert violations and set(kinds(violations)) == {EQUIVALENCE_MISMATCH}

    def test_extra_system_rule_caught(self):
        shadow, main = clean_pair()
        reference = lookup_order(shadow, main)
        extra = R("11******", 40, port=5, rule_id=9)
        violations = semantic_diff(reference + [extra], reference)
        assert kinds(violations) == [EQUIVALENCE_MISMATCH]
        assert extra.match.matches(violations[0].witness)

    def test_subsumed_rule_elision_is_equivalent(self):
        # Algorithm 1 legitimately drops rules that are dead on arrival:
        # fewer physical entries, identical semantics — must verify clean.
        reference = [
            R("1*******", 50, port=1, rule_id=1),
            R("10******", 40, port=1, rule_id=2),
        ]
        system = [reference[0]]
        assert semantic_diff(system, reference) == []


class TestOcclusionWarnings:
    def test_unreachable_rule_flagged(self):
        table = [
            R("1*******", 50, port=1, rule_id=1),
            R("10******", 40, port=2, rule_id=2),
        ]
        violations = find_unreachable_rules(table, "main")
        assert kinds(violations) == [UNREACHABLE_RULE]
        assert violations[0].rule_ids == (2,)
        assert not violations[0].is_error

    def test_partially_covered_rule_is_reachable(self):
        table = [
            R("10******", 50, port=1, rule_id=1),
            R("1*******", 40, port=2, rule_id=2),
        ]
        assert find_unreachable_rules(table) == []

    def test_shadowed_rule_flagged_only_on_action_conflict(self):
        table = [
            R("10******", 50, port=1, rule_id=1),
            R("1*******", 40, port=2, rule_id=2),
        ]
        violations = find_shadowed_rules(table, "main")
        assert kinds(violations) == [SHADOWED_RULE]
        same_action = [
            R("10******", 50, port=1, rule_id=1),
            R("1*******", 40, port=1, rule_id=2),
        ]
        assert find_shadowed_rules(same_action) == []


class TestVerifyPartition:
    def test_clean_pair_with_reference_verifies_clean(self):
        shadow, main = clean_pair()
        reference = lookup_order(shadow, main)
        assert verify_partition(shadow, main, reference=reference) == []

    def test_each_mutation_yields_exactly_its_kind(self):
        shadow, main = clean_pair()
        reference = lookup_order(shadow, main)

        inverted_main = [main[0].with_priority(150), main[1]]
        assert kinds(
            find_priority_inversions(shadow, inverted_main)
        ) == [PRIORITY_INVERSION]

        assert kinds(
            verify_partition(shadow, main + [shadow[0]])
        ) == [DUPLICATE_ENTRY]

        assert kinds(
            verify_partition([], main, reference=reference)
        ) == [EQUIVALENCE_MISMATCH]

    def test_errors_sort_before_warnings(self):
        shadow = [R("1010****", 100, port=2, rule_id=1)]
        main = [
            R("10******", 150, port=1, rule_id=2),  # inversion (error)
            R("1*******", 40, port=3, rule_id=3),  # shadowed (warning)
        ]
        violations = verify_partition(shadow, main, include_warnings=True)
        severities = [violation.severity for violation in violations]
        assert severities == sorted(severities)  # "error" < "warning"
        assert violations[0].kind == PRIORITY_INVERSION


class TestVerifyMoveplan:
    def test_planned_batch_verifies_clean(self):
        resident = [R("1111****", 90, rule_id=1)]
        batch = [
            R("0000****", 30, rule_id=2),
            R("00******", 20, rule_id=3),
            R("01******", 25, rule_id=4),
        ]
        plan = plan_batch_placement(batch, resident, capacity=8)
        assert verify_moveplan(plan, resident, capacity=8) == []

    def test_reordered_plan_caught_as_inversion(self):
        # Mutation: write the dominated rule first, its dominator below it.
        low = R("1*******", 10, rule_id=1)
        high = R("11******", 20, rule_id=2)
        plan = PlacementPlan(order=(low, high), slots=(0, 1), moves_avoided=0)
        violations = verify_moveplan(plan, [], capacity=8)
        assert kinds(violations) == [MOVEPLAN_INVERSION]
        assert set(violations[0].rule_ids) == {1, 2}
        # The correct order is clean at every intermediate state.
        fixed = PlacementPlan(order=(high, low), slots=(0, 1), moves_avoided=0)
        assert verify_moveplan(fixed, [], capacity=8) == []

    def test_slot_collision_with_resident_caught(self):
        resident = [R("1111****", 90, rule_id=1)]
        intruder = R("0000****", 5, rule_id=2)
        plan = PlacementPlan(order=(intruder,), slots=(0,), moves_avoided=0)
        violations = verify_moveplan(plan, resident, capacity=8)
        assert kinds(violations) == [MOVEPLAN_SLOT_CONFLICT]
        assert set(violations[0].rule_ids) == {1, 2}

    def test_slot_collision_within_plan_caught(self):
        a = R("0000****", 5, rule_id=1)
        b = R("1111****", 5, rule_id=2)
        plan = PlacementPlan(order=(a, b), slots=(3, 3), moves_avoided=0)
        assert kinds(verify_moveplan(plan, [], capacity=8)) == [
            MOVEPLAN_SLOT_CONFLICT
        ]

    def test_overflow_caught(self):
        rule = R("0000****", 5, rule_id=1)
        plan = PlacementPlan(order=(rule,), slots=(8,), moves_avoided=0)
        assert kinds(verify_moveplan(plan, [], capacity=8)) == [
            MOVEPLAN_OVERFLOW
        ]

    def test_misaligned_plan_rejected(self):
        rule = R("0000****", 5, rule_id=1)
        plan = PlacementPlan(order=(rule,), slots=(0, 1), moves_avoided=0)
        with pytest.raises(ValueError):
            verify_moveplan(plan, [])


class TestViolationRecords:
    def test_severity_derived_from_kind(self):
        error = Violation(kind=PRIORITY_INVERSION, message="x")
        warning = Violation(kind=UNREACHABLE_RULE, message="x")
        assert error.is_error and error.severity == "error"
        assert not warning.is_error and warning.severity == "warning"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Violation(kind="made-up-kind", message="x")

    def test_to_dict_is_json_shaped(self):
        violation = Violation(
            kind=PRIORITY_INVERSION,
            message="masked",
            rule_ids=(1, 2),
            table="shadow+main",
            witness=0xA0,
        )
        data = violation.to_dict()
        assert data["kind"] == PRIORITY_INVERSION
        assert data["severity"] == "error"
        assert data["rule_ids"] == [1, 2]
        assert data["witness"] == 0xA0


class TestVerifyInstaller:
    def test_hermes_installer_verifies_clean_under_churn(self):
        from repro.core import HermesConfig, HermesInstaller
        from repro.switchsim import FlowMod
        from repro.tcam import dell_8132f

        hermes = HermesInstaller(
            dell_8132f(),
            config=HermesConfig(
                shadow_capacity=16, admission_control=False, epoch=0.01
            ),
        )
        now = 0.0
        for step in range(40):
            now += 0.005
            hermes.advance_time(now)
            hermes.apply(
                FlowMod.add(
                    Rule.from_prefix(
                        f"10.{step}.0.0/16", step + 1, Action.output(1)
                    )
                )
            )
        assert sorted(hermes.tables()) == ["main", "shadow"]
        assert verify_installer(hermes) == []
        assert hermes.verify() == []

    def test_monolithic_installer_uses_fallback_slice(self):
        from repro.switchsim import DirectInstaller, FlowMod
        from repro.tcam import pica8_p3290

        direct = DirectInstaller(pica8_p3290())
        direct.apply(
            FlowMod.add(Rule.from_prefix("10.0.0.0/8", 5, Action.output(1)))
        )
        assert list(direct.tables()) == ["monolithic"]
        assert verify_installer(direct) == []
