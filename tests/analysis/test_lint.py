"""Tests for the determinism lint: every rule fires on known-bad code,
pragmas suppress with justification, and the shipped sources lint clean."""

import os
import textwrap

from repro.analysis.lint import (
    ADHOC_EVENT_LOOP,
    BARE_PRAGMA,
    FLOAT_EQ,
    TRACER_WALL_CLOCK,
    UNORDERED_ITERATION,
    UNSEEDED_RANDOM,
    WALL_CLOCK,
    WALLCLOCK_SEAM,
    apply_fixes,
    fix_paths,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURE = os.path.join(HERE, "fixtures", "nondeterminism_bad.py")
ENV_FIXTURE = os.path.join(HERE, "fixtures", "env_ordering_bad.py")
LOOP_FIXTURE = os.path.join(HERE, "fixtures", "adhoc_event_loop_bad.py")


def check(code):
    return lint_source(textwrap.dedent(code))


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestUnseededRandom:
    def test_global_random_module_flagged(self):
        assert rules_of(check("import random\nx = random.random()\n")) == [
            UNSEEDED_RANDOM
        ]

    def test_from_import_flagged(self):
        findings = check("from random import choice\nc = choice(options)\n")
        assert rules_of(findings) == [UNSEEDED_RANDOM]

    def test_numpy_legacy_global_rng_flagged(self):
        findings = check("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(findings) == [UNSEEDED_RANDOM]

    def test_seeded_generator_is_clean(self):
        assert check("import numpy as np\nrng = np.random.default_rng(7)\n") == []

    def test_seeded_random_instance_is_clean(self):
        assert check("import random\nrng = random.Random(42)\n") == []

    def test_unseeded_random_instance_flagged(self):
        assert rules_of(check("import random\nrng = random.Random()\n")) == [
            UNSEEDED_RANDOM
        ]


class TestWallClock:
    def test_time_time_flagged(self):
        assert rules_of(check("import time\nt = time.time()\n")) == [WALL_CLOCK]

    def test_perf_counter_flagged(self):
        assert rules_of(check("import time\nt = time.perf_counter()\n")) == [
            WALL_CLOCK
        ]

    def test_datetime_now_flagged(self):
        findings = check(
            "from datetime import datetime\nt = datetime.now()\n"
        )
        assert rules_of(findings) == [WALL_CLOCK]

    def test_sleep_is_not_a_clock_read(self):
        assert check("import time\ntime.sleep(1)\n") == []


class TestWallclockSeam:
    CODE = "import time\nt = time.perf_counter()\n"

    def test_direct_read_under_repro_flagged_twice(self):
        findings = lint_source(self.CODE, "src/repro/engine/sweep.py")
        assert rules_of(findings) == [WALL_CLOCK, WALLCLOCK_SEAM]

    def test_perf_package_owns_the_seam(self):
        findings = lint_source(
            self.CODE, "src/repro/obs/perf/wallclock.py"
        )
        assert rules_of(findings) == [WALL_CLOCK]

    def test_paths_outside_repro_exempt(self):
        assert rules_of(lint_source(self.CODE, "benchmarks/conftest.py")) == [
            WALL_CLOCK
        ]

    def test_wall_clock_pragma_does_not_cover_the_seam(self):
        code = (
            "import time\n"
            "# det: allow(wall-clock) -- measures real cost\n"
            "t = time.perf_counter()\n"
        )
        findings = lint_source(code, "src/repro/experiments/fig15_cpu.py")
        assert rules_of(findings) == [WALLCLOCK_SEAM]

    def test_seam_pragma_suppresses(self):
        code = (
            "import time\n"
            "# det: allow(wall-clock, wallclock-seam) -- the seam itself\n"
            "t = time.perf_counter()\n"
        )
        assert lint_source(code, "src/repro/experiments/fig15_cpu.py") == []


class TestUnorderedIteration:
    def test_for_loop_over_set_flagged(self):
        findings = check("for item in {1, 2, 3}:\n    print(item)\n")
        assert rules_of(findings) == [UNORDERED_ITERATION]

    def test_list_over_set_flagged(self):
        assert rules_of(check("items = list({1, 2, 3})\n")) == [
            UNORDERED_ITERATION
        ]

    def test_list_over_set_algebra_flagged(self):
        assert rules_of(check("items = list(seen | {4})\n")) == [
            UNORDERED_ITERATION
        ]

    def test_comprehension_over_set_flagged(self):
        assert rules_of(check("items = [x for x in {1, 2}]\n")) == [
            UNORDERED_ITERATION
        ]

    def test_sorted_over_set_is_clean(self):
        assert check("items = sorted({3, 1, 2})\n") == []

    def test_for_loop_over_sorted_set_is_clean(self):
        assert check("for item in sorted({1, 2}):\n    print(item)\n") == []

    def test_set_to_set_comprehension_is_clean(self):
        assert check("doubled = {x * 2 for x in {1, 2}}\n") == []

    def test_order_insensitive_builtins_are_clean(self):
        assert check("total = max({1, 2}) + len({3, 4})\n") == []


class TestSetInference:
    """Local set variables and Dict[..., Set[...]] subscripts feed the
    unordered-iteration sinks (the max_min_fair_rates hazard shape)."""

    FLOAT_FIXTURE = os.path.join(HERE, "fixtures", "float_accumulation_bad.py")

    def test_local_set_variable_flagged(self):
        findings = check("chosen = {1, 2}\nfor item in chosen:\n    pass\n")
        assert rules_of(findings) == [UNORDERED_ITERATION]

    def test_setcomp_binding_flagged(self):
        code = "picked = {x for x in items}\ntotal = list(picked)\n"
        assert rules_of(check(code)) == [UNORDERED_ITERATION]

    def test_rebinding_to_list_clears_inference(self):
        code = (
            "chosen = {1, 2}\n"
            "chosen = sorted(chosen)\n"
            "for item in chosen:\n"
            "    pass\n"
        )
        assert check(code) == []

    def test_annotated_set_argument_flagged(self):
        code = (
            "def drain(flows: set) -> None:\n"
            "    for flow in flows:\n"
            "        pass\n"
        )
        assert rules_of(check(code)) == [UNORDERED_ITERATION]

    def test_dict_of_sets_subscript_flagged(self):
        code = (
            "from typing import Dict, Set\n"
            "def freeze(flows_on_link: Dict[str, Set[int]], link: str):\n"
            "    return list(flows_on_link[link])\n"
        )
        assert rules_of(check(code)) == [UNORDERED_ITERATION]

    def test_dict_of_sets_alias_binding_flagged(self):
        code = (
            "from typing import Dict, Set\n"
            "def freeze(flows_on_link: Dict[str, Set[int]], link: str):\n"
            "    frozen = flows_on_link[link]\n"
            "    for flow in frozen:\n"
            "        pass\n"
        )
        assert rules_of(check(code)) == [UNORDERED_ITERATION]

    def test_sorted_subscript_is_clean(self):
        code = (
            "from typing import Dict, Set\n"
            "def freeze(flows_on_link: Dict[str, Set[int]], link: str):\n"
            "    return sorted(flows_on_link[link])\n"
        )
        assert check(code) == []

    def test_inference_scoped_to_function(self):
        code = (
            "def inner(flows: set) -> None:\n"
            "    pass\n"
            "def outer(flows: list) -> None:\n"
            "    for flow in flows:\n"
            "        pass\n"
        )
        assert check(code) == []

    def test_dict_of_plain_values_is_clean(self):
        code = (
            "from typing import Dict, List\n"
            "def read(paths: Dict[str, List[int]], key: str):\n"
            "    return list(paths[key])\n"
        )
        assert check(code) == []

    def test_float_accumulation_fixture_trips_only_this_rule(self):
        findings = lint_file(self.FLOAT_FIXTURE)
        assert rules_of(findings) == [UNORDERED_ITERATION] * 3


class TestFloatEq:
    def test_timestamp_equality_flagged(self):
        findings = check("if now == deadline:\n    pass\n")
        assert rules_of(findings) == [FLOAT_EQ]

    def test_suffixed_names_flagged(self):
        findings = check("done = finish_time != start_time\n")
        assert rules_of(findings) == [FLOAT_EQ]

    def test_none_sentinel_comparison_is_clean(self):
        assert check("if deadline == None:\n    pass\n") == []

    def test_ordering_comparison_is_clean(self):
        assert check("if now >= deadline:\n    pass\n") == []

    def test_untimey_names_are_clean(self):
        assert check("if count == total:\n    pass\n") == []


class TestTracerWallClock:
    def test_tracer_event_with_wall_clock_flagged(self):
        findings = check(
            "import time\ntracer.event('boot', time=time.time())\n"
        )
        assert TRACER_WALL_CLOCK in rules_of(findings)

    def test_get_tracer_chain_flagged(self):
        findings = check(
            "import time\nget_tracer().start_span('x', start=time.monotonic())\n"
        )
        assert TRACER_WALL_CLOCK in rules_of(findings)

    def test_span_finish_with_wall_clock_flagged(self):
        findings = check("import time\nspan.finish(end=time.perf_counter())\n")
        assert TRACER_WALL_CLOCK in rules_of(findings)

    def test_self_tracer_attribute_flagged(self):
        findings = check(
            "import time\nself._tracer.sample('occ', time=time.time(), value=1)\n"
        )
        assert TRACER_WALL_CLOCK in rules_of(findings)

    def test_sim_time_is_clean(self):
        findings = check("tracer.event('boot', time=self.now)\n")
        assert TRACER_WALL_CLOCK not in rules_of(findings)

    def test_non_tracer_receiver_is_only_plain_wall_clock(self):
        findings = check("import time\nlogger.event('x', time=time.time())\n")
        assert rules_of(findings) == [WALL_CLOCK]

    def test_pragma_suppresses(self):
        findings = check(
            """\
            import time
            tracer.event('boot', time=time.time())  # det: allow(tracer-wall-clock, wall-clock) -- test harness stamps real time
            """
        )
        assert findings == []


class TestAdhocEventLoop:
    def test_heapq_import_flagged(self):
        assert rules_of(check("import heapq\n")) == [ADHOC_EVENT_LOOP]

    def test_heapq_from_import_flagged(self):
        assert rules_of(check("from heapq import heappush\n")) == [
            ADHOC_EVENT_LOOP
        ]

    def test_heapq_call_flagged(self):
        findings = check("import heapq\nheapq.heappush(events, item)\n")
        assert rules_of(findings) == [ADHOC_EVENT_LOOP] * 2

    def test_imported_heapq_name_call_flagged(self):
        findings = check("from heapq import heappop\nx = heappop(events)\n")
        assert rules_of(findings) == [ADHOC_EVENT_LOOP] * 2

    def test_now_attribute_assignment_flagged(self):
        assert rules_of(check("self.now = 3.5\n")) == [ADHOC_EVENT_LOOP]

    def test_busy_until_aug_assignment_flagged(self):
        assert rules_of(check("agent._busy_until += stall\n")) == [
            ADHOC_EVENT_LOOP
        ]

    def test_annotated_assignment_flagged(self):
        assert rules_of(check("self._now: float = 0.0\n")) == [
            ADHOC_EVENT_LOOP
        ]

    def test_local_variable_named_now_is_clean(self):
        # Only *attributes* carry state across events; a local cursor is
        # fine (the resilient channel's retry loop uses one).
        assert check("now = start\nnow += backoff\n") == []

    def test_reading_time_attributes_is_clean(self):
        assert check("delay = agent.busy_until - clock.now\n") == []

    def test_engine_files_are_exempt(self):
        source = "import heapq\nself._now = 0.0\n"
        assert lint_source(source, "src/repro/engine/scheduler.py") == []
        assert rules_of(lint_source(source, "src/repro/other.py")) == [
            ADHOC_EVENT_LOOP,
            ADHOC_EVENT_LOOP,
        ]

    def test_pragma_suppresses(self):
        code = (
            "import heapq  # det: allow(adhoc-event-loop) -- sorts a "
            "static list, no event loop\n"
        )
        assert check(code) == []

    def test_fixture_trips_only_this_rule(self):
        findings = lint_file(LOOP_FIXTURE)
        assert set(rules_of(findings)) == {ADHOC_EVENT_LOOP}
        # imports (2), heappush, heappop call, now= (init), now= (step),
        # _busy_until= (init), _busy_until+= — and the pragma'd heapify
        # stays suppressed.
        assert len(findings) == 8


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        code = (
            "import time\n"
            "t = time.time()  # det: allow(wall-clock) -- measures real cost\n"
        )
        assert check(code) == []

    def test_standalone_pragma_covers_next_line(self):
        code = (
            "import time\n"
            "# det: allow(wall-clock) -- measures real cost\n"
            "t = time.time()\n"
        )
        assert check(code) == []

    def test_pragma_does_not_leak_past_next_line(self):
        code = (
            "import time\n"
            "# det: allow(wall-clock) -- only covers the next line\n"
            "x = 1\n"
            "t = time.time()\n"
        )
        assert rules_of(check(code)) == [WALL_CLOCK]

    def test_pragma_only_suppresses_named_rules(self):
        code = (
            "import time\n"
            "t = time.time()  # det: allow(unseeded-random) -- wrong rule\n"
        )
        assert rules_of(check(code)) == [WALL_CLOCK]

    def test_multiple_rules_in_one_pragma(self):
        code = (
            "import time\n"
            "t = list({time.time()})"
            "  # det: allow(wall-clock, unordered-iteration) -- test double\n"
        )
        assert check(code) == []

    def test_bare_pragma_flagged(self):
        code = "import time\nt = time.time()  # det: allow(wall-clock)\n"
        assert rules_of(check(code)) == [BARE_PRAGMA]


class TestFixtureAndSources:
    def test_fixture_trips_every_rule(self):
        findings = lint_file(FIXTURE)
        assert set(rules_of(findings)) == {
            UNSEEDED_RANDOM,
            WALL_CLOCK,
            UNORDERED_ITERATION,
            FLOAT_EQ,
            TRACER_WALL_CLOCK,
        }
        # wall-clock fires three times: time.time(), datetime.now(), and
        # the time.time() inside the tracer call (which also trips the
        # tracer-specific rule).
        assert rules_of(findings).count(WALL_CLOCK) == 3

    def test_findings_are_line_ordered_and_printable(self):
        findings = lint_file(FIXTURE)
        assert findings == sorted(findings, key=lambda f: (f.line, f.col))
        rendered = format_findings(findings)
        assert "[wall-clock]" in rendered and "nondeterminism_bad.py" in rendered

    def test_shipped_sources_lint_clean(self):
        src = os.path.join(REPO_ROOT, "src", "repro")
        findings = lint_paths([src])
        assert findings == [], format_findings(findings)


class TestEnvironmentOrdering:
    def test_for_over_environ_flagged_and_fixable(self):
        findings = check(
            """
            import os
            for name in os.environ:
                print(name)
            """
        )
        assert rules_of(findings) == [UNORDERED_ITERATION]
        assert findings[0].fixable

    def test_environ_views_flagged(self):
        findings = check(
            """
            import os
            pairs = list(os.environ.items())
            keys = [k for k in os.environ.keys()]
            """
        )
        assert rules_of(findings) == [UNORDERED_ITERATION] * 2
        assert all(finding.fixable for finding in findings)

    def test_aliased_environ_import_flagged(self):
        findings = check(
            """
            from os import environ as env
            for name in env:
                print(name)
            """
        )
        assert rules_of(findings) == [UNORDERED_ITERATION]

    def test_listdir_flagged_scandir_not_fixable(self):
        findings = check(
            """
            import os
            names = list(os.listdir("."))
            for entry in os.scandir("."):
                print(entry)
            """
        )
        assert rules_of(findings) == [UNORDERED_ITERATION] * 2
        by_fixable = sorted(finding.fixable for finding in findings)
        assert by_fixable == [False, True]

    def test_iterdir_flagged(self):
        findings = check(
            """
            from pathlib import Path
            names = [p.name for p in Path(".").iterdir()]
            """
        )
        assert rules_of(findings) == [UNORDERED_ITERATION]
        assert findings[0].fixable

    def test_sorted_sources_are_clean(self):
        findings = check(
            """
            import os
            from pathlib import Path
            for name in sorted(os.environ):
                print(name)
            names = list(sorted(os.listdir(".")))
            paths = [p for p in sorted(Path(".").iterdir())]
            """
        )
        assert findings == []

    def test_environ_pragma_suppresses(self):
        findings = check(
            """
            import os
            for name in os.environ:  # det: allow(unordered-iteration) -- sink is a set union
                print(name)
            """
        )
        assert findings == []


class TestAutofix:
    def test_fixture_roundtrip_leaves_only_scandir(self):
        with open(ENV_FIXTURE, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings = lint_file(ENV_FIXTURE)
        assert len(findings) == 7
        fixed, applied = apply_fixes(source, findings)
        assert applied == 6
        residual = lint_source(fixed, ENV_FIXTURE)
        assert [finding.fixable for finding in residual] == [False]
        assert "os.scandir" in residual[0].message

    def test_fix_inserts_sorted_wrapper(self):
        source = "import os\nnames = list(os.listdir('.'))\n"
        fixed, applied = apply_fixes(source, lint_source(source))
        assert applied == 1
        assert "list(sorted(os.listdir('.')))" in fixed
        assert lint_source(fixed) == []

    def test_fix_preserves_unrelated_lines(self):
        source = "import os\nx = 1\nfor k in os.environ:\n    pass\ny = 2\n"
        fixed, applied = apply_fixes(source, lint_source(source))
        assert applied == 1
        assert "x = 1\n" in fixed and "y = 2\n" in fixed
        assert "for k in sorted(os.environ):" in fixed

    def test_fix_paths_rewrites_file_in_place(self, tmp_path):
        target = tmp_path / "needs_fix.py"
        target.write_text("import os\nnames = list(os.environ)\n")
        results = fix_paths([str(tmp_path)])
        assert results == [(str(target), 1)]
        assert "list(sorted(os.environ))" in target.read_text()
        assert lint_file(str(target)) == []

    def test_fix_paths_leaves_clean_files_untouched(self, tmp_path):
        target = tmp_path / "clean.py"
        original = "import os\nnames = sorted(os.environ)\n"
        target.write_text(original)
        results = fix_paths([str(tmp_path)])
        assert results == [(str(target), 0)]
        assert target.read_text() == original


class TestSharedPragmaHelper:
    """The one pragma parser both namespaces share (repro.analysis.pragmas)."""

    def test_race_namespace_parses_independently(self):
        from repro.analysis.pragmas import DET, RACE, PragmaIndex

        lines = [
            "x = 1  # race: allow(schedule-order-race) -- pinned by parity",
            "y = 2  # det: allow(wall-clock) -- measures real cost",
        ]
        races = PragmaIndex(RACE, lines)
        dets = PragmaIndex(DET, lines)
        assert races.allows(1, "schedule-order-race")
        assert not races.allows(2, "wall-clock")
        assert dets.allows(2, "wall-clock")
        assert not dets.allows(1, "schedule-order-race")
        assert races.unjustified == [] and dets.unjustified == []

    def test_unjustified_pragma_reported_per_namespace(self):
        from repro.analysis.pragmas import RACE, PragmaIndex

        index = PragmaIndex(RACE, ["x = 1  # race: allow(schedule-order-race)"])
        assert index.allows(1, "schedule-order-race")
        assert len(index.unjustified) == 1

    def test_file_pragmas_cache_and_clear(self, tmp_path):
        from repro.analysis.pragmas import (
            RACE,
            clear_pragma_cache,
            file_pragmas,
        )

        target = tmp_path / "site.py"
        target.write_text("# race: allow(schedule-order-race) -- test\nx = 1\n")
        clear_pragma_cache()
        first = file_pragmas(str(target), RACE)
        assert first.allows(2, "schedule-order-race")
        assert file_pragmas(str(target), RACE) is first
        clear_pragma_cache()
        assert file_pragmas(str(target), RACE) is not first

    def test_unreadable_file_indexes_empty(self):
        from repro.analysis.pragmas import RACE, file_pragmas

        index = file_pragmas("/no/such/file-anywhere.py", RACE)
        assert index.allowed == {} and index.unjustified == []


class TestProjectPass:
    """The project-wide schedule-order rules (repro.analysis.project)."""

    SCHEDULE_FIXTURE = os.path.join(HERE, "fixtures", "schedule_order_bad.py")

    def _findings(self):
        from repro.analysis.project import lint_project

        return lint_project([self.SCHEDULE_FIXTURE])

    def test_fixture_trips_both_rules(self):
        from repro.analysis.project import AMBIGUOUS_TIER, SHARED_STATE_MUTATION

        rules = rules_of(self._findings())
        assert rules.count(SHARED_STATE_MUTATION) == 2
        assert rules.count(AMBIGUOUS_TIER) == 2

    def test_shared_state_findings_name_root_and_handler(self):
        from repro.analysis.project import SHARED_STATE_MUTATION

        messages = [
            finding.message
            for finding in self._findings()
            if finding.rule == SHARED_STATE_MUTATION
        ]
        assert any("'REGISTRY'" in message for message in messages)
        assert any("'peer'" in message for message in messages)
        assert all("'on_tick'" in message for message in messages)

    def test_ambiguous_tier_names_peer_sites(self):
        from repro.analysis.project import AMBIGUOUS_TIER

        tier_findings = [
            finding
            for finding in self._findings()
            if finding.rule == AMBIGUOUS_TIER
        ]
        assert {finding.line for finding in tier_findings} == {39, 42}
        assert all("tier=" in finding.message for finding in tier_findings)

    def test_pragma_suppresses_the_third_site(self):
        from repro.analysis.project import AMBIGUOUS_TIER

        # Line 46 computes the same timestamp but carries a justified
        # det: allow(ambiguous-tier) pragma.
        assert 46 not in {
            finding.line
            for finding in self._findings()
            if finding.rule == AMBIGUOUS_TIER
        }

    def test_self_rooted_writes_are_not_flagged(self):
        from repro.analysis.project import lint_project

        source = (
            "class A:\n"
            "    def dispatch(self, event):\n"
            "        if event.kind == 'tick':\n"
            "            self.on_tick()\n"
            "    def on_tick(self):\n"
            "        self.count[self.key] = 1\n"
            "    def arm(self):\n"
            "        self.scheduler.schedule(1.0, 'tick')\n"
        )
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "mod.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
            assert lint_project([path]) == []

    def test_shipped_sources_pass_project_rules(self):
        from repro.analysis.project import lint_project

        src = os.path.join(REPO_ROOT, "src", "repro")
        findings = lint_project([src])
        assert findings == [], format_findings(findings)
