"""Known-bad fixture for the project-wide schedule-order pass.

Every construct here is a schedule-order hazard the pass must flag:

* ``shared-state-mutation`` — ``on_tick`` is reachable from scheduled-event
  dispatch (``dispatch`` compares against the scheduled kind ``"tick"``)
  and mutates module-level state (``REGISTRY``) plus another agent's
  state (``peer.done``) directly.
* ``ambiguous-tier`` — ``arm`` and ``arm_again`` schedule events with the
  same computed timestamp expression from different call sites, with no
  explicit ``tier=``; their same-instant order falls to the seq
  tie-break.  ``arm_allowed`` does the same but carries a justified
  pragma, so it must NOT be flagged.

The module is valid Python but is never imported by the test suite; the
project pass reads it as source.
"""

REGISTRY = {}


class Worker:
    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.done = 0

    def on_tick(self, peer):
        # BAD: module-level state mutated from a scheduled handler.
        REGISTRY["last"] = self.done
        # BAD: reaches across into another agent's state.
        peer.done = peer.done + 1

    def dispatch(self, event, peer):
        if event.kind == "tick":
            self.on_tick(peer)

    def arm(self, outcome):
        # BAD: same computed timestamp as arm_again, no explicit tier.
        self.scheduler.schedule(max(outcome.ready_time, 0.0), "tick")

    def arm_again(self, outcome):
        self.scheduler.schedule(max(outcome.ready_time, 0.0), "tick")

    def arm_allowed(self, outcome):
        # det: allow(ambiguous-tier) -- collision order is pinned by this fixture's test
        self.scheduler.schedule(max(outcome.ready_time, 0.0), "tick")
