"""Known-bad fixture for the determinism lint.

Every function here exhibits exactly one nondeterminism hazard class the
lint must flag.  The module is deliberately *valid* Python that passes the
style checks (ruff) — only ``python -m repro.analysis lint`` complains —
so CI can assert the lint fails on it for the right reason.  It is never
imported by tests; it is linted as text.
"""

import random
import time
from datetime import datetime


def jitter():
    """unseeded-random: the process-global RNG ignores experiment seeds."""
    return random.random()


def stamp():
    """wall-clock: real time leaking into what should be simulated time."""
    return time.time()


def started():
    """wall-clock: datetime.now() is just as nondeterministic."""
    return datetime.now()


def drain(pending):
    """unordered-iteration: materializes hash order into a list."""
    return list({1, 2, 3} | pending)


def walk(switches):
    """unordered-iteration: for-loop over a set visits in hash order."""
    for switch in {name for name in switches}:
        switch.poll()


def due(now, deadline):
    """float-eq: exact equality between computed timestamps."""
    return now == deadline


def trace(tracer):
    """tracer-wall-clock: trace timestamps must come from sim time."""
    tracer.event("boot", time=time.time())
