"""Set-iteration hazards inside float-accumulation paths.

Every function here must trip the determinism lint's
``unordered-iteration`` rule via the set-*inference* extensions — local
names bound to set expressions and subscripts of ``Dict[..., Set[...]]``
annotated names.  This is the exact shape of the ``max_min_fair_rates``
float-ordering hazard: a hash-ordered set iteration driving ``-=``
accumulation, so two ``PYTHONHASHSEED`` values can disagree in the last
ulp.  The module is linted as text by the test suite and CI's must-fail
loop; it is never imported.
"""

from typing import Dict, List, Set, Tuple

Link = Tuple[str, str]


def frozen_flows_in_hash_order(
    flows_on_link: Dict[Link, Set[str]], bottleneck: Link
) -> List[str]:
    """``list()`` over a ``Dict[..., Set[...]]`` subscript is hash order."""
    return list(flows_on_link[bottleneck])


def subtraction_order_follows_hash(
    remaining: Dict[Link, float],
    flows_on_link: Dict[Link, Set[str]],
    links_of: Dict[str, List[Link]],
    bottleneck: Link,
    share: float,
) -> None:
    """Float accumulation driven by a name inferred to hold a set."""
    frozen = flows_on_link[bottleneck]
    for flow_id in frozen:
        for link in links_of[flow_id]:
            remaining[link] -= share


def local_setcomp_accumulation(values: Dict[str, float]) -> float:
    """A local set-comprehension binding iterated into a float sum."""
    chosen = {key for key in values if values[key] > 0.0}
    total = 0.0
    for key in chosen:
        total += values[key]
    return total
