"""A planted schedule-order race, for the detector's must-fail tests.

Two events are scheduled at the same instant in the same tier, and both
handlers install into the same TCAM table: which rule lands first — and
therefore the table's insertion order — is decided only by the order of
the two ``schedule()`` calls below (the kernel's ``seq`` tie-break).
That is exactly the hazard :class:`repro.analysis.races.RaceSanitizer`
exists to catch, so running this fixture under the sanitizer MUST report
one race on the table's state key with both events in the witness pair.

This module is never imported by the test suite directly; it is executed
through :func:`repro.analysis.races.run_fixture` (and the
``python -m repro.analysis races`` CLI) by ``tests/analysis/test_races.py``
and by CI's must-fail loop.
"""

from repro.engine.scheduler import EventScheduler
from repro.tcam.prefix import Prefix
from repro.tcam.rule import Action, Rule
from repro.tcam.switch_models import pica8_p3290
from repro.tcam.table import TcamTable


def run(sanitizer):
    """Drive the planted race under ``sanitizer``; returns the table."""
    scheduler = EventScheduler()
    sanitizer.watch_scheduler(scheduler)
    table = TcamTable(pica8_p3290(), name="s1")
    sanitizer.watch_table(table, "table:s1")

    # Same instant, same (default) tier: only seq orders these two.
    scheduler.schedule(1.0, "install-left", 1)
    scheduler.schedule(1.0, "install-right", 2)

    while scheduler:
        event = scheduler.pop()
        scheduler.clock.advance_to(event.time)
        rule = Rule.from_prefix(
            Prefix(10 << 24, 8 + event.payload),
            priority=event.payload,
            action=Action.output(event.payload),
        )
        table.insert(rule)
    return table
