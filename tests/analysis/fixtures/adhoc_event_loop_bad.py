"""Known-bad fixture for the ``adhoc-event-loop`` lint rule.

Every function here re-implements a slice of the discrete-event kernel
privately — the exact pattern :mod:`repro.engine` exists to delete.  The
module is valid Python that passes the style checks (ruff); only
``python -m repro.analysis lint`` complains, so CI can assert the lint
fails on it for the right reason.  It is never imported by tests; it is
linted as text.
"""

import heapq
from heapq import heappop


class PrivateLoop:
    """An ad-hoc event loop: its own heap, its own mutable clock."""

    def __init__(self):
        self.now = 0.0
        self._busy_until = 0.0
        self._events = []

    def schedule(self, time, payload):
        """adhoc-event-loop: heapq call building a private queue."""
        heapq.heappush(self._events, (time, payload))

    def step(self):
        """adhoc-event-loop: pops the private heap and mutates ``now``."""
        time, payload = heappop(self._events)
        self.now = time
        return payload

    def occupy(self, duration):
        """adhoc-event-loop: augmented assignment to a busy horizon."""
        self._busy_until += duration


def allowed_private_heap(items):
    """A justified suppression the lint must honour, not flag."""
    # det: allow(adhoc-event-loop) -- sorts a static list, no event loop
    heapq.heapify(items)
    return items
