"""Known-bad fixture: environment/filesystem iteration-order hazards.

Every function below iterates an OS-ordered source in an order-sensitive
position.  The lint must flag each one, and ``lint --fix`` must rewrite
every *provably safe* case (strings and Paths sort; ``os.scandir``'s
``DirEntry`` objects do not).  Kept out of ``src/`` so the shipped-sources
cleanliness test never sees it.
"""

import os
from os import listdir as ls
from pathlib import Path


def seed_from_environment():
    material = []
    for name in os.environ:  # fixable: environ keys are strings
        material.append(name)
    return material


def environment_pairs():
    return list(os.environ.items())  # fixable: str -> str pairs


def config_values():
    return [value for value in os.environ.values()]  # fixable


def replay_inputs(directory):
    traces = []
    for name in os.listdir(directory):  # fixable: names are strings
        traces.append(name)
    return traces


def aliased_listing(directory):
    return [name for name in ls(directory)]  # fixable through the alias


def entry_sizes(directory):
    sizes = []
    for entry in os.scandir(directory):  # NOT fixable: DirEntry unorderable
        sizes.append(entry.stat().st_size)
    return sizes


def capture_files(directory):
    return [path.name for path in Path(directory).iterdir()]  # fixable
