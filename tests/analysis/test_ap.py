"""Atomic-predicate engine tests: exactness, painting, incremental parity,
and the hypothesis differential suite pinning AP to the symbolic engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ap import (
    AtomIndex,
    IncrementalPairChecker,
    _contiguous_interval,
    atoms_intersect,
    atoms_subset,
    attach_incremental_checker,
    build_universe,
    engines_agree,
    first_common_atom,
    first_match_winners,
    violation_fingerprint,
)
from repro.analysis.verifier import lookup_order, verify_partition
from repro.tcam.rule import Action, Rule
from repro.tcam.ternary import TernaryMatch

WIDTH = 8
ALL_KEYS = range(1 << WIDTH)


def R(pattern: str, priority: int, port: int = 1, rule_id: int = 0) -> Rule:
    """A width-8 rule from a bit pattern, with an explicit id."""
    return Rule(
        match=TernaryMatch.from_string(pattern),
        priority=priority,
        action=Action.output(port),
        rule_id=rule_id,
    )


def brute_force_atoms(universe, match):
    """The atom ids a match covers, derived key-by-key."""
    return sorted({universe.atom_of_key(key) for key in ALL_KEYS if match.matches(key)})


PREFIX_PATTERNS = ["10******", "1010****", "0*******", "11111111", "********"]
CUBE_PATTERNS = ["1*1*****", "*0*0****", "1010****", "****1***"]


class TestUniverses:
    def test_prefix_shaped_matches_get_the_interval_backend(self):
        universe = build_universe(
            TernaryMatch.from_string(p) for p in PREFIX_PATTERNS
        )
        assert universe.backend == "interval"

    def test_general_ternary_matches_get_the_cube_backend(self):
        universe = build_universe(
            TernaryMatch.from_string(p) for p in CUBE_PATTERNS
        )
        assert universe.backend == "cube"

    def test_mixed_widths_rejected(self):
        narrow = TernaryMatch.from_string("10******")
        wide = TernaryMatch(value=0x0A000000, mask=0xFF000000, width=32)
        with pytest.raises(ValueError):
            build_universe([narrow, wide])

    @pytest.mark.parametrize("patterns", [PREFIX_PATTERNS, CUBE_PATTERNS])
    def test_atoms_of_is_exact(self, patterns):
        matches = [TernaryMatch.from_string(p) for p in patterns]
        universe = build_universe(matches)
        for match in matches:
            assert sorted(universe.atoms_of(match)) == brute_force_atoms(
                universe, match
            )

    @pytest.mark.parametrize("patterns", [PREFIX_PATTERNS, CUBE_PATTERNS])
    def test_atoms_partition_the_key_space(self, patterns):
        universe = build_universe(TernaryMatch.from_string(p) for p in patterns)
        seen = {universe.atom_of_key(key) for key in ALL_KEYS}
        assert seen == set(range(universe.atom_count))

    @pytest.mark.parametrize("patterns", [PREFIX_PATTERNS, CUBE_PATTERNS])
    def test_witness_lies_inside_its_atom(self, patterns):
        universe = build_universe(TernaryMatch.from_string(p) for p in patterns)
        for atom_id in range(universe.atom_count):
            assert universe.atom_of_key(universe.witness(atom_id)) == atom_id

    def test_contiguous_interval_accepts_any_width(self):
        assert _contiguous_interval(TernaryMatch.from_string("10******")) == (
            0b10000000,
            0b11000000,
        )
        assert _contiguous_interval(TernaryMatch.from_string("1*1*****")) is None


class TestAtomAlgebra:
    def test_range_backend_operations(self):
        assert atoms_intersect(range(0, 4), range(3, 8))
        assert not atoms_intersect(range(0, 3), range(3, 8))
        assert first_common_atom(range(0, 4), range(2, 8)) == 2
        assert atoms_subset(range(2, 4), range(0, 8))
        assert not atoms_subset(range(2, 9), range(0, 8))
        assert atoms_subset(range(3, 3), range(5, 5))  # empty is subset

    def test_tuple_backend_operations(self):
        assert first_common_atom((0, 4, 9), (1, 4, 7)) == 4
        assert first_common_atom((0, 2), (1, 3)) is None
        assert atoms_intersect((0, 4, 9), (9,))
        assert atoms_subset((1, 3), (0, 1, 2, 3))
        assert not atoms_subset((1, 5), (0, 1, 2, 3))


class TestFirstMatchPainting:
    @pytest.mark.parametrize("patterns", [PREFIX_PATTERNS, CUBE_PATTERNS])
    def test_painting_matches_per_key_first_match(self, patterns):
        rules = [
            R(pattern, 100 - index, rule_id=index + 1)
            for index, pattern in enumerate(patterns)
        ]
        universe = build_universe(rule.match for rule in rules)
        winner, claimed = first_match_winners(rules, universe)
        expected_claimed = [False] * len(rules)
        for key in ALL_KEYS:
            first = next(
                (i for i, rule in enumerate(rules) if rule.match.matches(key)),
                None,
            )
            assert winner[universe.atom_of_key(key)] == first
            if first is not None:
                expected_claimed[first] = True
        assert claimed == expected_claimed


class TestAtomIndex:
    def test_add_remove_roundtrip(self):
        index = AtomIndex(width=WIDTH)
        matches = [TernaryMatch.from_string(p) for p in PREFIX_PATTERNS]
        for match in matches:
            index.add_match(match)
        full_count = index.atom_count
        assert full_count == build_universe(matches).atom_count
        for match in matches:
            index.remove_match(match)
        assert index.atom_count == 1  # only the sentinels remain

    def test_duplicate_bounds_survive_one_removal(self):
        index = AtomIndex(width=WIDTH)
        match = TernaryMatch.from_string("10******")
        index.add_match(match)
        index.add_match(match)
        index.remove_match(match)
        assert index.atom_range(match) is not None
        assert index.atom_count == build_universe([match]).atom_count


def errors_only(shadow, main):
    return verify_partition(shadow, main, engine="symbolic")


class TestIncrementalChecker:
    def test_mirrors_full_verification_under_churn(self):
        checker = IncrementalPairChecker(width=WIDTH)
        shadow, main = [], []
        script = [
            ("insert", "shadow", R("1010****", 100, port=2, rule_id=1)),
            ("insert", "main", R("10******", 50, port=1, rule_id=2)),
            ("insert", "main", R("0*******", 60, port=3, rule_id=3)),
            # An inversion appears...
            ("insert", "main", R("1011****", 150, port=4, rule_id=4)),
            # ...a duplicate appears...
            ("insert", "main", R("1010****", 100, port=2, rule_id=1)),
            # ...then both are repaired.
            ("remove", "main", R("1010****", 100, port=2, rule_id=1)),
            ("remove", "main", R("1011****", 150, port=4, rule_id=4)),
            ("insert", "shadow", R("11******", 90, port=5, rule_id=5)),
            ("remove", "shadow", R("1010****", 100, port=2, rule_id=1)),
        ]
        tables = {"shadow": shadow, "main": main}
        for op, table, rule in script:
            if op == "insert":
                checker.insert(table, rule)
                tables[table].append(rule)
            else:
                checker.remove(table, rule)
                tables[table].remove(rule)
            assert violation_fingerprint(checker.violations()) == (
                violation_fingerprint(errors_only(shadow, main))
            ), f"diverged after {op} {rule.rule_id}"

    def test_modify_rescans(self):
        checker = IncrementalPairChecker(width=WIDTH)
        low = R("10******", 50, port=1, rule_id=2)
        checker.insert("shadow", R("1010****", 100, port=2, rule_id=1))
        checker.insert("main", low)
        assert checker.violations() == []
        checker.modify("main", low, low.with_priority(150))
        assert [v.kind for v in checker.violations()] == ["priority-inversion"]

    def test_attaches_to_hermes_installer(self):
        from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller
        from repro.switchsim import FlowMod
        from repro.tcam import pica8_p3290

        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(guarantee=GuaranteeSpec.milliseconds(5)),
        )
        checker = attach_incremental_checker(hermes)
        assert checker is not None
        hermes.apply(
            FlowMod.add(
                Rule.from_prefix("10.0.0.0/8", 50, Action.output(1))
            )
        )
        assert checker.rule_count == 1
        assert checker.violations() == []

    def test_returns_none_without_table_seam(self):
        class Bare:
            def tables(self):
                return {"shadow": [], "main": []}

        assert attach_incremental_checker(Bare()) is None


# ---------------------------------------------------------------------------
# Differential suite: AP must agree with the symbolic engine everywhere.
# ---------------------------------------------------------------------------
def bit_pattern():
    return st.text(alphabet="01*", min_size=WIDTH, max_size=WIDTH)


def width8_rules(max_size):
    return st.lists(
        st.tuples(bit_pattern(), st.integers(min_value=1, max_value=200)),
        max_size=max_size,
    )


def prefix32_match():
    return st.integers(min_value=0, max_value=12).flatmap(
        lambda length: st.builds(
            lambda network: TernaryMatch(
                value=network << (32 - length),
                mask=((1 << length) - 1) << (32 - length) if length else 0,
                width=32,
            ),
            st.integers(min_value=0, max_value=(1 << length) - 1 if length else 0),
        )
    )


def width32_rules(max_size):
    return st.lists(
        st.tuples(prefix32_match(), st.integers(min_value=1, max_value=200)),
        max_size=max_size,
    )


def assert_engines_agree(shadow, main):
    ap = verify_partition(shadow, main, include_warnings=True, engine="ap")
    symbolic = verify_partition(
        shadow, main, include_warnings=True, engine="symbolic"
    )
    assert engines_agree(ap, symbolic), (
        f"AP={violation_fingerprint(ap)}\nSYM={violation_fingerprint(symbolic)}"
    )


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(shadow=width8_rules(6), main=width8_rules(10))
    def test_general_ternary_tables(self, shadow, main):
        shadow_rules = [
            R(p, prio, port=1 + i % 3, rule_id=i + 1)
            for i, (p, prio) in enumerate(shadow)
        ]
        offset = len(shadow_rules)
        main_rules = [
            R(p, prio, port=1 + i % 3, rule_id=offset + i + 1)
            for i, (p, prio) in enumerate(main)
        ]
        assert_engines_agree(shadow_rules, main_rules)

    @settings(max_examples=60, deadline=None)
    @given(shadow=width32_rules(6), main=width32_rules(12))
    def test_prefix_tables(self, shadow, main):
        shadow_rules = [
            Rule(match=m, priority=prio, action=Action.output(1 + i % 3), rule_id=i + 1)
            for i, (m, prio) in enumerate(shadow)
        ]
        offset = len(shadow_rules)
        main_rules = [
            Rule(
                match=m,
                priority=prio,
                action=Action.output(1 + i % 3),
                rule_id=offset + i + 1,
            )
            for i, (m, prio) in enumerate(main)
        ]
        assert_engines_agree(shadow_rules, main_rules)

    @settings(max_examples=40, deadline=None)
    @given(system=width8_rules(8), reference=width8_rules(8))
    def test_semantic_diff_against_reference(self, system, reference):
        system_rules = [
            R(p, prio, port=1 + i % 3, rule_id=i + 1)
            for i, (p, prio) in enumerate(system)
        ]
        reference_rules = [
            R(p, prio, port=1 + i % 3, rule_id=100 + i)
            for i, (p, prio) in enumerate(reference)
        ]
        ap = verify_partition(
            [], system_rules, reference=reference_rules, engine="ap"
        )
        symbolic = verify_partition(
            [], system_rules, reference=reference_rules, engine="symbolic"
        )
        assert engines_agree(ap, symbolic)

    @settings(max_examples=40, deadline=None)
    @given(shadow=width8_rules(5), main=width8_rules(8))
    def test_ap_witnesses_are_concrete_counterexamples(self, shadow, main):
        shadow_rules = [
            R(p, prio, port=1, rule_id=i + 1) for i, (p, prio) in enumerate(shadow)
        ]
        offset = len(shadow_rules)
        main_rules = [
            R(p, prio, port=2, rule_id=offset + i + 1)
            for i, (p, prio) in enumerate(main)
        ]
        for violation in verify_partition(shadow_rules, main_rules, engine="ap"):
            if violation.kind != "priority-inversion" or violation.witness is None:
                continue
            key = violation.witness
            both = [
                rule
                for rule in shadow_rules + main_rules
                if rule.rule_id in violation.rule_ids
            ]
            # The witness key must actually fall inside the overlap region.
            assert all(rule.match.matches(key) for rule in both)
