"""Verifier-guided fuzzing of the Hermes installer.

A hypothesis state machine drives a :class:`HermesInstaller` with random
FlowMod sequences (adds, deletes, action modifies, forced migrations) and
runs the ruleset verifier after *every* step: any reachable sequence of
control-plane operations that breaks the shadow+main ≡ monolithic
invariant — even transiently — is a bug, and hypothesis shrinks it to a
minimal reproduction.  A :class:`DirectInstaller` executes the same
logical workload as the forwarding oracle, and the incremental AP checker
runs alongside the full verifier so the mirror-maintenance path is fuzzed
for free.

Budget knobs (for CI): ``FUZZ_EXAMPLES`` (default 20 scenarios) and
``FUZZ_STEPS`` (default 30 operations per scenario).  Setting
``FUZZ_VIA_AGENT=1`` routes every FlowMod through a kernel-clocked
:class:`~repro.switchsim.agent.SwitchAgent` instead of calling the
installer directly, so the agent's queueing/tracing/fault plumbing sits in
the fuzzed path too.  Setting ``FUZZ_RACES=1`` runs every operation as a
dispatched kernel event under the schedule-order race sanitizer
(:class:`repro.analysis.races.RaceSanitizer`) with a per-step
zero-races invariant: each operation advances time, so any race the
sanitizer reports means the instrumentation itself manufactured a
same-instant conflict — a detector false positive caught in the fuzz
loop.
"""

import os

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.analysis.ap import attach_incremental_checker, violation_fingerprint
from repro.analysis.races import RaceSanitizer
from repro.analysis.verifier import verify_installer
from repro.core import HermesConfig, HermesInstaller
from repro.engine import Clock, EventScheduler
from repro.switchsim import DirectInstaller, FlowMod, SwitchAgent
from repro.tcam import Action, Prefix, Rule, dell_8132f, pica8_p3290

FUZZ_EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "20"))
FUZZ_STEPS = int(os.environ.get("FUZZ_STEPS", "30"))
FUZZ_VIA_AGENT = os.environ.get("FUZZ_VIA_AGENT") == "1"
FUZZ_RACES = os.environ.get("FUZZ_RACES") == "1"


class HermesFuzz(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                shadow_capacity=32,
                admission_control=False,
                epoch=0.01,
                verify_migrations=True,
            ),
        )
        self.oracle = DirectInstaller(dell_8132f())
        self.checker = attach_incremental_checker(self.hermes)
        self.agent = (
            SwitchAgent(self.hermes, name="fuzz-switch", clock=Clock())
            if FUZZ_VIA_AGENT
            else None
        )
        self.time = 0.0
        self.live = []  # (hermes_rule, oracle_rule) pairs
        self.used_priorities = set()
        if FUZZ_RACES:
            self.scheduler = EventScheduler()
            self.sanitizer = RaceSanitizer()
            self.sanitizer.watch_scheduler(self.scheduler)
            self.sanitizer.watch_installer(self.hermes, "installer:fuzz")
        else:
            self.scheduler = None
            self.sanitizer = None

    def _as_event(self, kind):
        """FUZZ_RACES mode: run the next operation as a dispatched event,
        so its installer/table accesses get a per-event footprint."""
        if self.scheduler is not None:
            self.scheduler.schedule(self.time, kind)
            self.scheduler.pop()
            self.scheduler.clock.advance_to(self.time)

    def _apply_hermes(self, flow_mod):
        """Apply one FlowMod at ``self.time``, via the agent when asked.

        The agent calls ``advance_time`` itself before executing, so the
        two paths keep identical installer-visible timelines.
        """
        self._as_event("flowmod")
        if self.agent is not None:
            self.agent.submit(flow_mod, at_time=self.time)
        else:
            self.hermes.advance_time(self.time)
            self.hermes.apply(flow_mod)

    # -- operations ----------------------------------------------------
    @rule(
        length=st.integers(min_value=8, max_value=16),
        selector=st.integers(min_value=0, max_value=15),
        priority=st.integers(min_value=2, max_value=400),
        port=st.integers(min_value=1, max_value=7),
    )
    def add_rule(self, length, selector, priority, port):
        # Unique priorities keep overlapping-tie lookup order well defined,
        # so an oracle mismatch always means a real partitioning bug rather
        # than an implementation-defined tie-break.
        while priority in self.used_priorities:
            priority += 1
        self.used_priorities.add(priority)
        mask = ((1 << length) - 1) << (32 - length)
        network = ((10 << 24) | (selector << (32 - length))) & mask
        prefix = Prefix(network, length)
        self.time += 0.005
        h_rule = Rule.from_prefix(prefix, priority, Action.output(port))
        o_rule = Rule.from_prefix(prefix, priority, Action.output(port))
        self._apply_hermes(FlowMod.add(h_rule))
        self.oracle.apply(FlowMod.add(o_rule))
        self.live.append((h_rule, o_rule))

    @precondition(lambda self: self.live)
    @rule(selector=st.integers(min_value=0, max_value=1 << 30))
    def delete_rule(self, selector):
        h_rule, o_rule = self.live.pop(selector % len(self.live))
        self.time += 0.005
        self._apply_hermes(FlowMod.delete(h_rule.rule_id))
        self.oracle.apply(FlowMod.delete(o_rule.rule_id))

    @precondition(lambda self: self.live)
    @rule(
        selector=st.integers(min_value=0, max_value=1 << 30),
        port=st.integers(min_value=1, max_value=7),
    )
    def modify_action(self, selector, port):
        index = selector % len(self.live)
        h_rule, o_rule = self.live[index]
        self.time += 0.005
        self._apply_hermes(FlowMod.modify(h_rule.rule_id, action=Action.output(port)))
        self.oracle.apply(FlowMod.modify(o_rule.rule_id, action=Action.output(port)))

    @rule()
    def force_migration(self):
        self.time += 0.005
        self._as_event("migrate")
        self.hermes.rule_manager.migrate(self.time)

    # -- invariants (the verifier IS the fuzzing oracle) ---------------
    @invariant()
    def partition_invariant_holds(self):
        violations = verify_installer(self.hermes)
        assert violations == [], [str(v) for v in violations]

    @invariant()
    def incremental_checker_agrees(self):
        if self.checker is not None:
            assert violation_fingerprint(self.checker.violations()) == (
                violation_fingerprint(verify_installer(self.hermes))
            )

    @invariant()
    def migration_plans_verified_clean(self):
        assert self.hermes.rule_manager.migration_violations == []

    @invariant()
    def no_schedule_order_races(self):
        # Ops run at strictly increasing instants, so the sanitizer must
        # stay silent; a report here is a detector false positive.
        if self.sanitizer is not None:
            assert self.sanitizer.races == [], [
                str(race) for race in self.sanitizer.races
            ]

    @invariant()
    def forwarding_matches_oracle(self):
        for h_rule, _ in self.live:
            prefix = h_rule.match.to_prefix()
            for probe in (prefix.first_address, prefix.last_address):
                h_hit = self.hermes.lookup(probe)
                o_hit = self.oracle.lookup(probe)
                assert (h_hit is None) == (o_hit is None), hex(probe)
                if h_hit is not None:
                    assert h_hit.action == o_hit.action, hex(probe)


    def teardown(self):
        if self.sanitizer is not None:
            races = self.sanitizer.finish()
            assert races == [], [str(race) for race in races]
        super().teardown()


HermesFuzz.TestCase.settings = settings(
    max_examples=FUZZ_EXAMPLES,
    stateful_step_count=FUZZ_STEPS,
    deadline=None,
)

TestHermesFuzz = HermesFuzz.TestCase
