"""Snapshot round-trip tests and end-to-end CLI checks.

The CLI tests run ``python -m repro.analysis`` in a subprocess — the same
invocation CI's analysis job uses — asserting the documented exit codes:
0 clean, 1 violations/findings, 2 usage errors.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.snapshot import (
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    rule_from_dict,
    rule_to_dict,
    snapshot_tables,
)
from repro.tcam.rule import Action, Rule
from repro.tcam.ternary import TernaryMatch

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURE = os.path.join(HERE, "fixtures", "nondeterminism_bad.py")


class TestRoundTrip:
    def test_rule_round_trips_through_dict(self):
        rule = Rule.from_prefix(
            "10.1.0.0/16", 40, Action.output(3), rule_id=7, origin_id=2
        )
        rebuilt = rule_from_dict(rule_to_dict(rule))
        assert rebuilt == rule

    def test_bit_pattern_and_every_action_round_trip(self):
        rules = [
            Rule(TernaryMatch.from_string("10*1"), 9, Action.drop(), rule_id=1),
            Rule(
                TernaryMatch.from_string("1***"),
                8,
                Action.to_controller(),
                rule_id=2,
            ),
            Rule(TernaryMatch.from_string("0*0*"), 7, Action.output(4), rule_id=3),
        ]
        for rule in rules:
            assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_snapshot_round_trips_through_json(self):
        shadow = [Rule.from_prefix("10.0.0.0/8", 90, Action.output(1), rule_id=1)]
        main = [Rule.from_prefix("10.1.0.0/16", 50, Action.output(2), rule_id=2)]
        payload = snapshot_tables(
            {"shadow": shadow, "main": main}, reference=shadow + main
        )
        snapshot = load_snapshot(json.loads(json.dumps(payload)))
        assert snapshot.shadow == shadow
        assert snapshot.main == main
        assert snapshot.reference == shadow + main

    def test_monolithic_snapshot_falls_back(self):
        rules = [Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)]
        snapshot = load_snapshot(snapshot_tables({"monolithic": rules}))
        assert snapshot.shadow == []
        assert snapshot.main == rules

    def test_file_round_trip(self, tmp_path):
        rules = [Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)]
        path = tmp_path / "snap.json"
        dump_snapshot(snapshot_tables({"main": rules}), str(path))
        assert read_snapshot(str(path)).main == rules

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            load_snapshot({"format": "something-else/9", "tables": {}})

    def test_unknown_action_rejected(self):
        data = rule_to_dict(
            Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)
        )
        data["action"] = "teleport"
        with pytest.raises(ValueError, match="action"):
            rule_from_dict(data)

    def test_width_mismatch_rejected(self):
        data = rule_to_dict(
            Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)
        )
        data["width"] = 16
        with pytest.raises(ValueError, match="width"):
            rule_from_dict(data)


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_scenario_exits_zero(self):
        result = run_cli("scenario", "--steps", "40")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stdout

    @pytest.mark.parametrize(
        "corruption", ["swap-priority", "drop-rule", "duplicate"]
    )
    def test_each_corruption_is_caught(self, corruption):
        result = run_cli("scenario", "--steps", "40", "--corrupt", corruption)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "error" in result.stdout

    def test_scenario_snapshot_verifies_clean_offline(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        written = run_cli("scenario", "--steps", "40", "--out", path)
        assert written.returncode == 0, written.stdout + written.stderr
        verified = run_cli("verify", path)
        assert verified.returncode == 0, verified.stdout + verified.stderr

    def test_lint_flags_the_bad_fixture(self):
        result = run_cli("lint", FIXTURE)
        assert result.returncode == 1
        assert "unseeded-random" in result.stdout

    def test_lint_passes_on_shipped_sources(self):
        result = run_cli("lint", os.path.join(REPO_ROOT, "src", "repro"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_missing_snapshot_is_a_usage_error(self):
        result = run_cli("verify", "/nonexistent/snapshot.json")
        assert result.returncode == 2
