"""Snapshot round-trip tests and end-to-end CLI checks.

The CLI tests run ``python -m repro.analysis`` in a subprocess — the same
invocation CI's analysis job uses — asserting the documented exit codes:
0 clean, 1 violations/findings, 2 usage errors.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.snapshot import (
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    rule_from_dict,
    rule_to_dict,
    snapshot_tables,
)
from repro.tcam.rule import Action, Rule
from repro.tcam.ternary import TernaryMatch

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURE = os.path.join(HERE, "fixtures", "nondeterminism_bad.py")
ENV_FIXTURE = os.path.join(HERE, "fixtures", "env_ordering_bad.py")


class TestRoundTrip:
    def test_rule_round_trips_through_dict(self):
        rule = Rule.from_prefix(
            "10.1.0.0/16", 40, Action.output(3), rule_id=7, origin_id=2
        )
        rebuilt = rule_from_dict(rule_to_dict(rule))
        assert rebuilt == rule

    def test_bit_pattern_and_every_action_round_trip(self):
        rules = [
            Rule(TernaryMatch.from_string("10*1"), 9, Action.drop(), rule_id=1),
            Rule(
                TernaryMatch.from_string("1***"),
                8,
                Action.to_controller(),
                rule_id=2,
            ),
            Rule(TernaryMatch.from_string("0*0*"), 7, Action.output(4), rule_id=3),
        ]
        for rule in rules:
            assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_snapshot_round_trips_through_json(self):
        shadow = [Rule.from_prefix("10.0.0.0/8", 90, Action.output(1), rule_id=1)]
        main = [Rule.from_prefix("10.1.0.0/16", 50, Action.output(2), rule_id=2)]
        payload = snapshot_tables(
            {"shadow": shadow, "main": main}, reference=shadow + main
        )
        snapshot = load_snapshot(json.loads(json.dumps(payload)))
        assert snapshot.shadow == shadow
        assert snapshot.main == main
        assert snapshot.reference == shadow + main

    def test_monolithic_snapshot_falls_back(self):
        rules = [Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)]
        snapshot = load_snapshot(snapshot_tables({"monolithic": rules}))
        assert snapshot.shadow == []
        assert snapshot.main == rules

    def test_file_round_trip(self, tmp_path):
        rules = [Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)]
        path = tmp_path / "snap.json"
        dump_snapshot(snapshot_tables({"main": rules}), str(path))
        assert read_snapshot(str(path)).main == rules

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            load_snapshot({"format": "something-else/9", "tables": {}})

    def test_unknown_action_rejected(self):
        data = rule_to_dict(
            Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)
        )
        data["action"] = "teleport"
        with pytest.raises(ValueError, match="action"):
            rule_from_dict(data)

    def test_width_mismatch_rejected(self):
        data = rule_to_dict(
            Rule.from_prefix("10.0.0.0/8", 9, Action.output(1), rule_id=1)
        )
        data["width"] = 16
        with pytest.raises(ValueError, match="width"):
            rule_from_dict(data)


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_scenario_exits_zero(self):
        result = run_cli("scenario", "--steps", "40")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stdout

    @pytest.mark.parametrize(
        "corruption", ["swap-priority", "drop-rule", "duplicate"]
    )
    def test_each_corruption_is_caught(self, corruption):
        result = run_cli("scenario", "--steps", "40", "--corrupt", corruption)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "error" in result.stdout

    def test_scenario_snapshot_verifies_clean_offline(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        written = run_cli("scenario", "--steps", "40", "--out", path)
        assert written.returncode == 0, written.stdout + written.stderr
        verified = run_cli("verify", path)
        assert verified.returncode == 0, verified.stdout + verified.stderr

    def test_lint_flags_the_bad_fixture(self):
        result = run_cli("lint", FIXTURE)
        assert result.returncode == 1
        assert "unseeded-random" in result.stdout

    def test_lint_passes_on_shipped_sources(self):
        result = run_cli("lint", os.path.join(REPO_ROOT, "src", "repro"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_missing_snapshot_is_a_usage_error(self):
        result = run_cli("verify", "/nonexistent/snapshot.json")
        assert result.returncode == 2


def P(prefix, priority, port=1, rule_id=0):
    return Rule.from_prefix(prefix, priority, Action.output(port), rule_id=rule_id)


class TestSnapshotDiff:
    def pair(self):
        older = load_snapshot(
            snapshot_tables(
                {
                    "shadow": [P("10.0.0.0/16", 50, rule_id=1)],
                    "main": [
                        P("10.1.0.0/16", 40, rule_id=2),
                        P("10.2.0.0/16", 30, rule_id=3),
                    ],
                }
            )
        )
        newer = load_snapshot(
            snapshot_tables(
                {
                    "shadow": [P("10.3.0.0/16", 20, rule_id=4)],
                    "main": [
                        P("10.0.0.0/16", 50, rule_id=1),  # moved from shadow
                        P("10.1.0.0/16", 45, rule_id=2),  # priority changed
                    ],
                }
            )
        )
        return older, newer

    def test_buckets_by_rule_id(self):
        older, newer = self.pair()
        delta = diff_snapshots(older, newer)
        assert delta.added == (4,)
        assert delta.removed == (3,)
        assert delta.moved == (1,)
        assert delta.modified == (2,)
        assert delta.changed_ids == frozenset({1, 2, 3, 4})
        assert not delta.is_empty

    def test_identical_snapshots_have_empty_delta(self):
        older, _ = self.pair()
        delta = diff_snapshots(older, older)
        assert delta.is_empty
        assert delta.to_dict() == {
            "added": [],
            "removed": [],
            "moved": [],
            "modified": [],
        }


class TestCliEngines:
    def test_scenario_cross_check_agrees(self):
        result = run_cli("scenario", "--steps", "40", "--cross-check")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "agree" in result.stdout

    def test_scenario_symbolic_engine_matches(self):
        result = run_cli("scenario", "--steps", "40", "--engine", "symbolic")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_corrupt_scenario_cross_check_still_fails_cleanly(self):
        result = run_cli(
            "scenario", "--steps", "40", "--corrupt", "swap-priority",
            "--cross-check",
        )
        # Both engines see the same corruption: exit 1 (violations), not 2.
        assert result.returncode == 1, result.stdout + result.stderr
        assert "agree" in result.stdout


class TestCliOverTime:
    def snapshots(self, tmp_path, corrupt=None):
        older = str(tmp_path / "older.json")
        newer = str(tmp_path / "newer.json")
        assert run_cli("scenario", "--steps", "40", "--out", older).returncode == 0
        newer_args = ["scenario", "--steps", "40", "--out", newer]
        if corrupt:
            newer_args += ["--corrupt", corrupt]
        run_cli(*newer_args)
        return older, newer

    def test_clean_pair_is_legitimate_churn(self, tmp_path):
        older, newer = self.snapshots(tmp_path)
        result = run_cli("verify", older, newer)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "legitimate churn" in result.stdout
        assert "delta" in result.stdout

    def test_corruption_localized_to_the_changed_rule(self, tmp_path):
        older, newer = self.snapshots(tmp_path, corrupt="swap-priority")
        result = run_cli("verify", older, newer)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "corruption introduced between" in result.stdout
        # The planted twin carries rule id 10000000; the delta names it.
        assert "implicated by the delta: rule #10000000" in result.stdout

    def test_corrupt_older_snapshot_reported_first(self, tmp_path):
        older, newer = self.snapshots(tmp_path, corrupt="duplicate")
        result = run_cli("verify", newer, older)
        assert result.returncode == 1, result.stdout + result.stderr
        assert "corruption already present" in result.stdout

    def test_three_snapshots_is_a_usage_error(self, tmp_path):
        older, newer = self.snapshots(tmp_path)
        result = run_cli("verify", older, newer, older)
        assert result.returncode == 2


class TestCliLintFix:
    def test_env_fixture_fails_lint(self):
        result = run_cli("lint", ENV_FIXTURE)
        assert result.returncode == 1
        assert "unordered-iteration" in result.stdout

    def test_fix_rewrites_then_reports_residual(self, tmp_path):
        target = tmp_path / "bad.py"
        with open(ENV_FIXTURE, "r", encoding="utf-8") as handle:
            target.write_text(handle.read())
        result = run_cli("lint", "--fix", str(target))
        # Six rewrites land; the unorderable os.scandir finding remains.
        assert "6 fix(es) in total" in result.stdout
        assert result.returncode == 1
        assert "os.scandir" in result.stdout
        rerun = run_cli("lint", "--fix", str(target))
        assert "0 fix(es) in total" in rerun.stdout
