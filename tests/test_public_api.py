"""Public-API hygiene: everything exported exists and is documented."""

import inspect

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.bgp
import repro.core
import repro.engine
import repro.experiments
import repro.obs
import repro.obs.perf
import repro.simulator
import repro.switchsim
import repro.tcam
import repro.topology
import repro.traffic

PACKAGES = [
    repro,
    repro.analysis,
    repro.baselines,
    repro.bgp,
    repro.core,
    repro.engine,
    repro.obs,
    repro.obs.perf,
    repro.simulator,
    repro.switchsim,
    repro.tcam,
    repro.topology,
    repro.traffic,
]


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_all_exports_resolve(package):
    exported = getattr(package, "__all__", None)
    assert exported, f"{package.__name__} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package.__name__}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_exports_are_documented(package):
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{package.__name__}.{name} lacks a docstring"


@pytest.mark.parametrize("package", PACKAGES, ids=lambda p: p.__name__)
def test_package_has_docstring(package):
    assert package.__doc__ and package.__doc__.strip()


def test_public_class_methods_are_documented():
    """Every public method of the flagship classes carries a docstring."""
    from repro import HermesInstaller, Simulation, SwitchAgent
    from repro.tcam import TcamTable

    for cls in (HermesInstaller, Simulation, SwitchAgent, TcamTable):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"


def test_version_string():
    assert repro.__version__.count(".") == 2
