"""Tests for fat-tree and ISP topologies plus the path provider."""

import networkx as nx
import pytest

from repro.topology import (
    FatTreeSpec,
    PathProvider,
    abilene,
    build_fat_tree,
    geant,
    get_isp_topology,
    hosts,
    path_links,
    path_switches,
    pops,
    quest,
    switches,
)


class TestFatTree:
    def test_k4_counts(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        assert len(hosts(graph)) == 16
        assert len(switches(graph)) == 20  # 4 core + 8 agg + 8 edge

    def test_spec_counts_formulas(self):
        spec = FatTreeSpec(k=16)
        assert spec.host_count == 1024
        assert spec.switch_count == 320

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            FatTreeSpec(k=5)

    def test_connected(self):
        assert nx.is_connected(build_fat_tree(FatTreeSpec(k=4)))

    def test_host_degree_is_one(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        for host in hosts(graph):
            assert graph.degree(host) == 1

    def test_edge_switch_degree(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        # Each edge switch: k/2 hosts + k/2 aggregation uplinks.
        assert graph.degree("edge-0-0") == 4

    def test_core_connects_to_every_pod(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        neighbors = set(graph.neighbors("core-0"))
        pods_reached = {graph.nodes[n]["pod"] for n in neighbors}
        assert pods_reached == {0, 1, 2, 3}

    def test_links_carry_capacity(self):
        spec = FatTreeSpec(k=4, link_capacity=40e9)
        graph = build_fat_tree(spec)
        for _, _, data in graph.edges(data=True):
            assert data["capacity"] == 40e9

    def test_inter_pod_path_length(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        # host -> edge -> agg -> core -> agg -> edge -> host: 6 hops.
        path = nx.shortest_path(graph, "host-0-0-0", "host-3-1-1")
        assert len(path) == 7


class TestIspTopologies:
    @pytest.mark.parametrize(
        "factory,node_count",
        [(abilene, 11), (geant, 24), (quest, 21)],
    )
    def test_node_counts(self, factory, node_count):
        assert factory().number_of_nodes() == node_count

    @pytest.mark.parametrize("factory", [abilene, geant, quest])
    def test_connected(self, factory):
        assert nx.is_connected(factory())

    def test_abilene_link_count(self):
        assert abilene().number_of_edges() == 14

    def test_registry(self):
        assert get_isp_topology("Abilene").number_of_nodes() == 11
        with pytest.raises(KeyError):
            get_isp_topology("arpanet")

    def test_pops_sorted(self):
        names = pops(abilene())
        assert names == sorted(names)

    def test_capacity_override(self):
        graph = abilene(link_capacity=2.5e9)
        for _, _, data in graph.edges(data=True):
            assert data["capacity"] == 2.5e9


class TestPathProvider:
    @pytest.fixture
    def provider(self):
        return PathProvider(build_fat_tree(FatTreeSpec(k=4)), k_paths=4)

    def test_shortest_path_endpoints(self, provider):
        path = provider.shortest_path("host-0-0-0", "host-1-0-0")
        assert path[0] == "host-0-0-0" and path[-1] == "host-1-0-0"

    def test_k_paths_are_distinct_and_sorted(self, provider):
        paths = provider.paths("host-0-0-0", "host-3-1-1")
        assert len(paths) == 4
        assert len(set(paths)) == 4
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_ecmp_subset(self, provider):
        ecmp = provider.ecmp_paths("host-0-0-0", "host-3-1-1")
        assert len(ecmp) == 4  # k=4 fat tree: 4 equal-cost core paths

    def test_cache_symmetric(self, provider):
        forward = provider.paths("host-0-0-0", "host-1-0-0")
        backward = provider.paths("host-1-0-0", "host-0-0-0")
        assert backward[0] == tuple(reversed(forward[0]))

    def test_intra_pod_ecmp(self, provider):
        ecmp = provider.ecmp_paths("host-0-0-0", "host-0-1-0")
        assert len(ecmp) == 2  # two aggregation switches per pod

    def test_invalid_k_paths(self):
        with pytest.raises(ValueError):
            PathProvider(abilene(), k_paths=0)


class TestPathHelpers:
    def test_path_links_canonical(self):
        links = path_links(("b", "a", "c"))
        assert links == [("a", "b"), ("a", "c")]

    def test_path_switches_excludes_hosts(self):
        graph = build_fat_tree(FatTreeSpec(k=4))
        path = nx.shortest_path(graph, "host-0-0-0", "host-1-0-0")
        only_switches = path_switches(tuple(path), graph)
        assert only_switches[0].startswith("edge-")
        assert all(not node.startswith("host-") for node in only_switches)
