"""Tests for the HermesInstaller: guarantees, correctness, migration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller
from repro.switchsim import DirectInstaller, FlowMod, SwitchAgent
from repro.tcam import Action, Prefix, Rule, dell_8132f, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def key(address):
    return Prefix.from_string(address).network


def make_hermes(**config_kwargs):
    config_kwargs.setdefault("guarantee", GuaranteeSpec.milliseconds(5))
    return HermesInstaller(pica8_p3290(), config=HermesConfig(**config_kwargs))


class TestConstruction:
    def test_shadow_sized_from_guarantee(self):
        hermes = make_hermes()
        timing = hermes.timing
        assert hermes.shadow.capacity == timing.max_occupancy_for_guarantee(5e-3)
        assert hermes.shadow.capacity + hermes.main.capacity == timing.capacity

    def test_shadow_capacity_override(self):
        hermes = make_hermes(shadow_capacity=10)
        assert hermes.shadow.capacity == 10

    def test_oversized_shadow_rejected(self):
        with pytest.raises(ValueError):
            make_hermes(shadow_capacity=pica8_p3290().capacity)

    def test_infeasible_guarantee_rejected(self):
        with pytest.raises(ValueError):
            make_hermes(guarantee=GuaranteeSpec(1e-9))

    def test_supported_rate_positive(self):
        assert make_hermes().supported_rate() > 0


class TestGuaranteedInsertion:
    def test_insert_goes_to_shadow(self):
        hermes = make_hermes()
        result = hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert result.used_guaranteed_path
        assert hermes.shadow.occupancy == 1
        assert hermes.main.occupancy == 0

    def test_insertion_latency_within_guarantee(self):
        hermes = make_hermes()
        for index in range(hermes.shadow.capacity):
            result = hermes.apply(
                FlowMod.add(rule(f"10.{index // 200}.{index % 200}.0/24", 100 + index))
            )
            assert result.latency <= 5e-3

    def test_violation_counting(self):
        hermes = make_hermes()
        assert hermes.violation_rate() == 0.0
        hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert hermes.violations == 0
        assert hermes.guaranteed_inserts == 1

    def test_rate_limited_overflow_goes_to_main(self):
        hermes = make_hermes(shadow_capacity=4)
        # Exhaust the burst (= shadow capacity tokens) without advancing time.
        for index in range(10):
            hermes.apply(FlowMod.add(rule(f"10.{index}.0.0/16", 100 + index)))
        assert hermes.main.occupancy > 0
        assert hermes.gate_keeper.diverted > 0

    def test_lowest_priority_fastpath_targets_main(self):
        hermes = make_hermes()
        hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        hermes.rule_manager.migrate(0.0)
        assert hermes.main.occupancy == 1
        result = hermes.apply(FlowMod.add(rule("0.0.0.0/0", 1)))
        assert not result.used_guaranteed_path
        assert hermes.main.occupancy == 2

    def test_fastpath_disabled_uses_shadow(self):
        hermes = make_hermes(lowest_priority_fastpath=False, admission_control=False)
        hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        hermes.rule_manager.migrate(0.0)
        result = hermes.apply(FlowMod.add(rule("11.0.0.0/8", 1)))
        assert result.used_guaranteed_path


class TestPartitionedInsertion:
    def make_with_blocker(self):
        hermes = make_hermes(lowest_priority_fastpath=False, admission_control=False)
        blocker = rule("192.168.1.0/26", 99, port=1)
        hermes.apply(FlowMod.add(blocker))
        hermes.rule_manager.migrate(0.0)
        assert hermes.main.occupancy == 1
        return hermes, blocker

    def test_overlapping_insert_is_partitioned(self):
        hermes, blocker = self.make_with_blocker()
        new = rule("192.168.1.0/24", 10, port=2)
        result = hermes.apply(FlowMod.add(new))
        assert len(result.installed_rule_ids) == 2  # /25 + /26 fragments
        assert hermes.partition_map.is_partitioned(new.rule_id)

    def test_partitioned_semantics_match_monolithic(self):
        hermes, blocker = self.make_with_blocker()
        new = rule("192.168.1.0/24", 10, port=2)
        hermes.apply(FlowMod.add(new))
        # Inside the blocker: port 1 wins (higher priority).
        assert hermes.lookup(key("192.168.1.5")).action.port == 1
        # Outside the blocker but inside /24: port 2.
        assert hermes.lookup(key("192.168.1.200")).action.port == 2

    def test_subsumed_rule_not_installed(self):
        hermes, blocker = self.make_with_blocker()
        dead = rule("192.168.1.0/28", 10, port=3)
        result = hermes.apply(FlowMod.add(dead))
        assert result.installed_rule_ids == ()
        assert hermes.lookup(key("192.168.1.5")).action.port == 1

    def test_deleting_logical_rule_removes_all_fragments(self):
        hermes, _ = self.make_with_blocker()
        new = rule("192.168.1.0/24", 10, port=2)
        hermes.apply(FlowMod.add(new))
        hermes.apply(FlowMod.delete(new.rule_id))
        assert hermes.lookup(key("192.168.1.200")) is None
        assert not hermes.partition_map.is_partitioned(new.rule_id)

    def test_deleting_blocker_restores_original(self):
        hermes, blocker = self.make_with_blocker()
        new = rule("192.168.1.0/24", 10, port=2)
        hermes.apply(FlowMod.add(new))
        hermes.apply(FlowMod.delete(blocker.rule_id))
        # Figure 6: the /26 hole is re-covered by the restored original.
        hit = hermes.lookup(key("192.168.1.5"))
        assert hit is not None and hit.action.port == 2

    def test_deleting_subsumed_rules_blocker_restores_it(self):
        hermes, blocker = self.make_with_blocker()
        dead = rule("192.168.1.0/28", 10, port=3)
        hermes.apply(FlowMod.add(dead))
        hermes.apply(FlowMod.delete(blocker.rule_id))
        assert hermes.lookup(key("192.168.1.5")).action.port == 3

    def test_delete_unknown_rule_raises(self):
        hermes, _ = self.make_with_blocker()
        with pytest.raises(KeyError):
            hermes.apply(FlowMod.delete(987654321))


class TestModify:
    def test_action_only_modify_is_constant_time(self):
        hermes = make_hermes()
        r = rule("10.0.0.0/8", 50, port=1)
        hermes.apply(FlowMod.add(r))
        result = hermes.apply(FlowMod.modify(r.rule_id, action=Action.output(9)))
        assert hermes.lookup(key("10.1.1.1")).action.port == 9
        assert result.latency < 1e-3

    def test_action_modify_of_partitioned_rule_updates_fragments(self):
        hermes = make_hermes(lowest_priority_fastpath=False, admission_control=False)
        blocker = rule("192.168.1.0/26", 99, port=1)
        hermes.apply(FlowMod.add(blocker))
        hermes.rule_manager.migrate(0.0)
        new = rule("192.168.1.0/24", 10, port=2)
        hermes.apply(FlowMod.add(new))
        hermes.apply(FlowMod.modify(new.rule_id, action=Action.output(7)))
        assert hermes.lookup(key("192.168.1.200")).action.port == 7
        # After the blocker goes, the restored original carries the new action.
        hermes.apply(FlowMod.delete(blocker.rule_id))
        assert hermes.lookup(key("192.168.1.5")).action.port == 7

    def test_priority_modify_repositions(self):
        hermes = make_hermes(admission_control=False)
        low = rule("10.0.0.0/8", 10, port=1)
        high = rule("10.0.0.0/16", 20, port=2)
        hermes.apply(FlowMod.add(low))
        hermes.apply(FlowMod.add(high))
        assert hermes.lookup(key("10.0.1.1")).action.port == 2
        hermes.apply(FlowMod.modify(low.rule_id, priority=99))
        assert hermes.lookup(key("10.0.1.1")).action.port == 1

    def test_modify_unknown_rule_raises(self):
        hermes = make_hermes()
        with pytest.raises(KeyError):
            hermes.apply(FlowMod.modify(31337, action=Action.drop()))


class TestMigrationIntegration:
    def test_sustained_load_stays_guaranteed(self):
        hermes = make_hermes()
        agent = SwitchAgent(hermes)
        time = 0.0
        for index in range(600):
            r = rule(f"10.{(index // 200) % 200}.{index % 200}.0/24", 100 + index)
            completed = agent.submit(FlowMod.add(r), at_time=time)
            assert completed.result.used_guaranteed_path
            assert completed.result.latency <= 5e-3
            time += 1e-3  # 1000 rules/s
        assert len(hermes.rule_manager.migrations) >= 2
        assert hermes.violations == 0

    def test_verified_migrations_stay_clean_under_load(self):
        hermes = make_hermes(verify_migrations=True)
        agent = SwitchAgent(hermes)
        time = 0.0
        for index in range(400):
            r = rule(f"10.{index % 40}.{index % 200}.0/24", 100 + index)
            agent.submit(FlowMod.add(r), at_time=time)
            time += 1e-3
        assert hermes.rule_manager.plans_verified >= 1
        assert hermes.rule_manager.migration_violations == []

    def test_reconfigure_guarantee_resizes_shadow(self):
        hermes = make_hermes()
        original_capacity = hermes.shadow.capacity
        hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        hermes.reconfigure_guarantee(GuaranteeSpec.milliseconds(1))
        assert hermes.shadow.capacity < original_capacity
        assert hermes.shadow.occupancy == 0  # drained during reconfigure
        assert hermes.lookup(key("10.1.1.1")) is not None
        hermes.reconfigure_guarantee(GuaranteeSpec.milliseconds(10))
        assert hermes.shadow.capacity > original_capacity


OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "delete"]),
        st.integers(min_value=8, max_value=16),  # prefix length
        st.integers(min_value=0, max_value=15),  # subnet selector
        st.integers(min_value=1, max_value=60),  # priority
    ),
    min_size=1,
    max_size=25,
)


class TestDifferentialCorrectness:
    """Random workloads must keep Hermes's two tables semantically identical
    to one monolithic table — the paper's Section 4 guarantee."""

    @settings(max_examples=60, deadline=None)
    @given(OPS, st.booleans())
    def test_hermes_equals_monolithic(self, operations, fastpath):
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                shadow_capacity=32,
                lowest_priority_fastpath=fastpath,
                admission_control=False,
            ),
        )
        direct = DirectInstaller(dell_8132f())
        installed = []  # (hermes_rule, direct_rule) pairs
        time = 0.0
        for op, length, selector, priority in operations:
            time += 0.03
            hermes.advance_time(time)
            if op == "add" or not installed:
                mask = ((1 << length) - 1) << (32 - length)
                network = ((10 << 24) | (selector << (32 - length))) & mask
                prefix = Prefix(network, length)
                port = (priority % 7) + 1
                h_rule = Rule.from_prefix(prefix, priority, Action.output(port))
                d_rule = Rule.from_prefix(prefix, priority, Action.output(port))
                hermes.apply(FlowMod.add(h_rule))
                direct.apply(FlowMod.add(d_rule))
                installed.append((h_rule, d_rule))
            else:
                index = selector % len(installed)
                h_rule, d_rule = installed.pop(index)
                hermes.apply(FlowMod.delete(h_rule.rule_id))
                direct.apply(FlowMod.delete(d_rule.rule_id))
        # Probe boundaries of every installed prefix plus random corners.
        probes = set()
        for h_rule, _ in installed:
            prefix = h_rule.match.to_prefix()
            probes |= {prefix.first_address, prefix.last_address}
        probes |= {key("10.0.0.0"), key("10.255.255.255"), key("11.0.0.0")}
        for probe in sorted(probes):
            h_hit = hermes.lookup(probe)
            d_hit = direct.lookup(probe)
            # Skip probes where equal-priority overlapping rules make the
            # monolithic tie-break implementation-defined.
            matching = [
                r for r, _ in (
                    (h, d) for h, d in installed
                ) if r.match.matches(probe)
            ]
            priorities = [r.priority for r in matching]
            if priorities and priorities.count(max(priorities)) > 1:
                continue
            h_action = None if h_hit is None else h_hit.action
            d_action = None if d_hit is None else d_hit.action
            assert h_action == d_action, f"divergence at key {probe}"
