"""Tests for the Rule Manager: triggers, migration workflow, consistency."""

import pytest

from repro.core import (
    CubicSplinePredictor,
    PartitionMap,
    PredictiveTrigger,
    RuleManager,
    SlackCorrector,
    ThresholdTrigger,
    partition_new_rule,
)
from repro.core.prediction import EwmaPredictor
from repro.tcam import Action, Prefix, Rule, TcamTable, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def make_manager(threshold=None, shadow_capacity=16, main_capacity=512, **kwargs):
    shadow = TcamTable(pica8_p3290(), capacity=shadow_capacity, name="shadow")
    main = TcamTable(pica8_p3290(), capacity=main_capacity, name="main")
    pmap = PartitionMap()
    if threshold is not None:
        trigger = ThresholdTrigger(threshold)
    else:
        trigger = PredictiveTrigger(CubicSplinePredictor(window=4), SlackCorrector(1.0))
    kwargs.setdefault("epoch", 0.05)
    manager = RuleManager(shadow, main, pmap, trigger, **kwargs)
    return manager, shadow, main, pmap


class TestTriggers:
    def test_threshold_zero_fires_on_any_occupancy(self):
        trigger = ThresholdTrigger(0.0)
        assert trigger.should_migrate(1, 100)
        assert not trigger.should_migrate(0, 100)

    def test_threshold_waits_for_fill(self):
        trigger = ThresholdTrigger(0.5)
        assert not trigger.should_migrate(49, 100)
        assert trigger.should_migrate(50, 100)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdTrigger(1.5)

    def test_predictive_fires_when_forecast_overflows(self):
        trigger = PredictiveTrigger(EwmaPredictor(alpha=1.0), SlackCorrector(0.0))
        trigger.observe_epoch(60)
        assert trigger.should_migrate(50, 100)  # 50 + 60 > 100
        assert not trigger.should_migrate(30, 100)  # 30 + 60 <= 100

    def test_predictive_slack_inflates_forecast(self):
        plain = PredictiveTrigger(EwmaPredictor(alpha=1.0), SlackCorrector(0.0))
        inflated = PredictiveTrigger(EwmaPredictor(alpha=1.0), SlackCorrector(1.0))
        for trigger in (plain, inflated):
            trigger.observe_epoch(30)
        assert not plain.should_migrate(50, 100)  # 50 + 30 <= 100
        assert inflated.should_migrate(50, 100)  # 50 + 60 > 100

    def test_predictive_idle_shadow_never_migrates(self):
        trigger = PredictiveTrigger(EwmaPredictor(alpha=1.0), SlackCorrector(5.0))
        trigger.observe_epoch(1000)
        assert not trigger.should_migrate(0, 100)


class TestMigrationWorkflow:
    def test_moves_all_shadow_rules_to_main(self):
        manager, shadow, main, _ = make_manager(threshold=0.0)
        for index in range(5):
            shadow.insert(rule(f"10.{index}.0.0/16", 10 + index))
        report = manager.migrate(now=1.0)
        assert shadow.occupancy == 0
        assert main.occupancy == 5
        assert report.rules_copied == 5
        assert report.rules_written == 5
        assert report.duration > 0

    def test_empty_shadow_migration_is_cheap(self):
        manager, _, _, _ = make_manager(threshold=0.0)
        report = manager.migrate(now=0.0)
        assert report.rules_copied == 0
        assert report.rules_written == 0

    def test_fragment_family_collapses_to_original(self):
        manager, shadow, main, pmap = make_manager()
        blocker = rule("10.0.0.0/16", 99, port=1)
        main.insert(blocker)
        original = rule("10.0.0.0/8", 10, port=2)
        outcome = partition_new_rule(original, main.rules())
        assert len(outcome.fragments) > 1
        for fragment in outcome.fragments:
            shadow.insert(fragment)
        pmap.record(original, outcome)
        report = manager.migrate(now=0.0)
        # The fragments collapsed back into the single original rule.
        assert report.rules_merged_away == len(outcome.fragments) - 1
        assert original.rule_id in main
        assert not pmap.is_partitioned(original.rule_id)
        # Semantics: the blocker still wins inside 10.0/16, the original
        # catches the rest of 10/8.
        assert main.lookup(Prefix.from_string("10.0.1.1").network).action.port == 1
        assert main.lookup(Prefix.from_string("10.9.1.1").network).action.port == 2

    def test_optimizer_disabled_writes_fragments_verbatim(self):
        manager, shadow, main, pmap = make_manager(optimize=False)
        blocker = rule("10.0.0.0/16", 99)
        main.insert(blocker)
        original = rule("10.0.0.0/8", 10)
        outcome = partition_new_rule(original, main.rules())
        for fragment in outcome.fragments:
            shadow.insert(fragment)
        pmap.record(original, outcome)
        report = manager.migrate(now=0.0)
        assert report.rules_merged_away == 0
        assert report.rules_written == len(outcome.fragments)

    def test_main_table_overflow_strands_rules_in_shadow(self):
        manager, shadow, main, _ = make_manager(main_capacity=3)
        for index in range(6):
            shadow.insert(rule(f"10.{index}.0.0/16", 10 + index))
        manager.migrate(now=0.0)
        assert main.occupancy == 3
        assert shadow.occupancy == 3  # the stranded remainder

    def test_atomic_migration_has_no_gap(self):
        manager, shadow, main, _ = make_manager(atomic=True)
        resident = rule("10.0.0.0/8", 10)
        main.insert(resident)
        shadow.insert(rule("11.0.0.0/8", 10))
        report = manager.migrate(now=0.0)
        assert report.transient_gap_time == 0.0

    def test_non_atomic_migration_records_gap(self):
        manager, shadow, main, _ = make_manager(atomic=False, optimize=False)
        resident = rule("10.0.0.0/8", 10)
        main.insert(resident)
        # Plant a shadow rule with the *same id* to force a refresh cycle.
        shadow.insert(
            Rule(
                match=resident.match,
                priority=resident.priority,
                action=Action.output(7),
                rule_id=resident.rule_id,
            )
        )
        report = manager.migrate(now=0.0)
        assert report.transient_gap_time > 0.0
        assert main.get(resident.rule_id).action.port == 7

    def test_conflicting_migrated_rules_pay_online_cost(self):
        """A migrated rule that dominates a main-table resident cannot use
        a planned (zero-shift) slot: it must pay the shifting cost."""
        manager, shadow, main, _ = make_manager(main_capacity=1024)
        for index in range(200):
            main.insert(rule(f"10.{index % 200}.0.0/16", 10))
        # Clean rule: disjoint from everything in main.
        clean = rule("192.168.0.0/16", 99)
        shadow.insert(clean)
        report_clean = manager.migrate(now=0.0)
        # Conflicting rule: dominates the resident /16s.
        dominating = rule("10.0.0.0/8", 99)
        shadow.insert(dominating)
        report_conflicted = manager.migrate(now=1.0)
        assert report_conflicted.write_time > 5 * report_clean.write_time

    def test_migration_report_accounting(self):
        manager, shadow, _, _ = make_manager()
        for index in range(4):
            shadow.insert(rule(f"10.{index}.0.0/16", 10))
        report = manager.migrate(now=2.5)
        assert report.started_at == 2.5
        assert report.duration >= report.optimizer_time + report.write_time


class TestTick:
    def test_tick_before_epoch_boundary_does_nothing(self):
        manager, shadow, _, _ = make_manager(threshold=0.0)
        shadow.insert(rule("10.0.0.0/8", 1))
        assert manager.tick(0.01) == 0.0
        assert shadow.occupancy == 1

    def test_tick_after_epoch_runs_trigger(self):
        manager, shadow, main, _ = make_manager(threshold=0.0)
        shadow.insert(rule("10.0.0.0/8", 1))
        background = manager.tick(0.06)
        assert background > 0.0
        assert shadow.occupancy == 0
        assert main.occupancy == 1

    def test_predictive_end_to_end(self):
        manager, shadow, main, _ = make_manager(shadow_capacity=8)
        time = 0.0
        for index in range(32):
            manager.tick(time)
            if not shadow.is_full:
                shadow.insert(rule(f"10.{index}.0.0/16", 10 + index))
                manager.note_arrival()
            time += 0.02  # ~2.5 arrivals per 0.05s epoch against capacity 8
        manager.tick(time)
        assert len(manager.migrations) >= 1
        assert main.occupancy > 0

    def test_long_idle_gap_is_collapsed(self):
        manager, shadow, _, _ = make_manager()
        shadow.insert(rule("10.0.0.0/8", 1))
        manager.note_arrival()
        # A huge time jump must not stall in per-epoch bookkeeping.
        manager.tick(1e6)
        assert manager._epoch_start == pytest.approx(1e6, abs=manager.epoch)

    def test_migrations_per_second(self):
        manager, shadow, _, _ = make_manager(threshold=0.0)
        shadow.insert(rule("10.0.0.0/8", 1))
        manager.migrate(0.0)
        assert manager.migrations_per_second(2.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            manager.migrations_per_second(0.0)

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            make_manager(epoch=0.0)


class TestMigrationVerification:
    def test_clean_migration_plan_verifies(self):
        manager, shadow, main, _ = make_manager(
            threshold=0.0, verify_migrations=True
        )
        for index in range(4):
            shadow.insert(rule(f"10.{index}.0.0/16", 10 + index))
        manager.migrate(now=1.0)
        assert manager.plans_verified == 1
        assert manager.migration_violations == []
        assert main.occupancy == 4

    def test_verification_off_by_default(self):
        manager, shadow, _, _ = make_manager(threshold=0.0)
        shadow.insert(rule("10.0.0.0/16", 10))
        manager.migrate(now=1.0)
        assert manager.plans_verified == 0
        assert manager.migration_violations == []

    def test_sabotaged_plan_surfaces_inversion(self, monkeypatch):
        from repro.tcam import moveplan

        real = moveplan.plan_batch_placement

        def reversed_plan(batch, resident, capacity):
            plan = real(batch, resident, capacity)
            return moveplan.PlacementPlan(
                order=tuple(reversed(plan.order)),
                slots=plan.slots,
                moves_avoided=plan.moves_avoided,
            )

        monkeypatch.setattr(moveplan, "plan_batch_placement", reversed_plan)
        manager, shadow, _, _ = make_manager(
            threshold=0.0, verify_migrations=True
        )
        shadow.insert(rule("10.0.0.0/8", 10))
        shadow.insert(rule("10.0.0.0/16", 20))
        manager.migrate(now=1.0)
        assert manager.plans_verified == 1
        kinds = {
            violation.kind for violation in manager.migration_violations
        }
        assert "moveplan-inversion" in kinds

    def test_refresh_only_migration_skips_planning(self):
        manager, shadow, main, _ = make_manager(
            threshold=0.0, verify_migrations=True
        )
        migrated = rule("10.0.0.0/16", 10)
        main.insert(migrated)
        shadow.insert(migrated)
        manager.migrate(now=1.0)
        # The only rule already lives in the main table, so the writer runs
        # its refresh protocol and there is no planned batch to verify.
        assert manager.plans_verified == 0
        assert manager.migration_violations == []
