"""Tests for the EWMA / Cubic-Spline / ARMA predictors and correctors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ArmaPredictor,
    CubicSplinePredictor,
    DeadzoneCorrector,
    EwmaPredictor,
    NoCorrection,
    SlackCorrector,
    make_corrector,
    make_predictor,
)


class TestEwma:
    def test_first_observation_is_forecast(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.update(100)
        assert predictor.predict() == 100

    def test_smooths_towards_recent(self):
        predictor = EwmaPredictor(alpha=0.5)
        predictor.update(100)
        predictor.update(200)
        assert predictor.predict() == 150

    def test_alpha_one_tracks_exactly(self):
        predictor = EwmaPredictor(alpha=1.0)
        for value in (5, 50, 500):
            predictor.update(value)
        assert predictor.predict() == 500

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_empty_predicts_zero(self):
        assert EwmaPredictor().predict() == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=50))
    def test_forecast_within_observed_range(self, values):
        predictor = EwmaPredictor(alpha=0.3)
        for value in values:
            predictor.update(value)
        tolerance = 1e-9 * (1 + max(values))
        assert min(values) - tolerance <= predictor.predict() <= max(values) + tolerance


class TestCubicSpline:
    def test_needs_window_of_four(self):
        with pytest.raises(ValueError):
            CubicSplinePredictor(window=3)

    def test_few_samples_fall_back_to_last(self):
        predictor = CubicSplinePredictor(window=8)
        predictor.update(10)
        predictor.update(30)
        assert predictor.predict() == 30

    def test_extrapolates_linear_trend(self):
        predictor = CubicSplinePredictor(window=8)
        for value in (10, 20, 30, 40, 50):
            predictor.update(value)
        forecast = predictor.predict()
        assert 55 <= forecast <= 70  # continues the ramp

    def test_constant_series_predicts_constant(self):
        predictor = CubicSplinePredictor(window=6)
        for _ in range(6):
            predictor.update(42)
        assert predictor.predict() == pytest.approx(42)

    def test_clamped_to_multiple_of_max(self):
        predictor = CubicSplinePredictor(window=4, clamp_factor=2.0)
        for value in (1, 2, 4, 100):
            predictor.update(value)
        assert predictor.predict() <= 200

    def test_never_negative(self):
        predictor = CubicSplinePredictor(window=4)
        for value in (100, 60, 20, 0):
            predictor.update(value)
        assert predictor.predict() >= 0

    def test_empty_predicts_zero(self):
        assert CubicSplinePredictor().predict() == 0.0


class TestArma:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ArmaPredictor(p=0)
        with pytest.raises(ValueError):
            ArmaPredictor(p=2, q=1, window=4)

    def test_short_series_uses_mean(self):
        predictor = ArmaPredictor(p=1, q=0, window=16)
        predictor.update(10)
        predictor.update(20)
        assert predictor.predict() == pytest.approx(15)

    def test_tracks_ar1_process(self):
        rng = np.random.default_rng(3)
        predictor = ArmaPredictor(p=2, q=1, window=32)
        value = 50.0
        for _ in range(64):
            value = 0.8 * value + 10 + rng.normal(0, 0.5)
            predictor.update(value)
        # Stationary mean of the process is 10 / (1 - 0.8) = 50.
        assert 30 <= predictor.predict() <= 70

    def test_constant_series(self):
        predictor = ArmaPredictor(p=1, q=0, window=16)
        for _ in range(16):
            predictor.update(7.0)
        assert predictor.predict() == pytest.approx(7.0, abs=1.0)

    def test_never_negative(self):
        predictor = ArmaPredictor()
        for value in (100, 50, 10, 5, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0):
            predictor.update(value)
        assert predictor.predict() >= 0

    def test_empty_predicts_zero(self):
        assert ArmaPredictor().predict() == 0.0


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("ewma", EwmaPredictor),
            ("cubic-spline", CubicSplinePredictor),
            ("Cubic_Spline", CubicSplinePredictor),
            ("arma", ArmaPredictor),
        ],
    )
    def test_make_predictor(self, name, cls):
        assert isinstance(make_predictor(name), cls)

    def test_unknown_predictor(self):
        with pytest.raises(KeyError):
            make_predictor("prophet")

    def test_observe_and_predict(self):
        predictor = make_predictor("ewma", alpha=1.0)
        assert predictor.observe_and_predict(9) == 9


class TestCorrectors:
    def test_slack_inflates_fractionally(self):
        # Paper example: prediction 1000 at 40% slack -> 1400.
        assert SlackCorrector(0.4).apply(1000) == pytest.approx(1400)

    def test_deadzone_adds_constant(self):
        # Paper example: prediction 1000 with deadzone 100 -> 1100.
        assert DeadzoneCorrector(100).apply(1000) == pytest.approx(1100)

    def test_no_correction(self):
        assert NoCorrection().apply(123.4) == 123.4

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlackCorrector(-0.1)
        with pytest.raises(ValueError):
            DeadzoneCorrector(-1)

    @pytest.mark.parametrize("name", ["slack", "deadzone", "none"])
    def test_factory(self, name):
        corrector = make_corrector(name)
        assert corrector.apply(10) >= 10

    def test_factory_unknown(self):
        with pytest.raises(KeyError):
            make_corrector("pid")

    @given(st.floats(min_value=0, max_value=1e6))
    def test_correctors_never_shrink(self, prediction):
        assert SlackCorrector(0.5).apply(prediction) >= prediction
        assert DeadzoneCorrector(50).apply(prediction) >= prediction
