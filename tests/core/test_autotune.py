"""Tests for the online slack auto-tuner (Section 8.6 future work)."""

import pytest

from repro.core import (
    AutoTuneConfig,
    GuaranteeSpec,
    HermesConfig,
    HermesInstaller,
    SlackAutoTuner,
    SlackCorrector,
)
from repro.switchsim import FlowMod
from repro.tcam import Action, Rule, pica8_p3290


class TestController:
    def make_tuner(self, **overrides):
        defaults = dict(
            initial_slack=0.4,
            increase_step=0.25,
            decay_factor=0.9,
            clean_windows_before_decay=3,
        )
        defaults.update(overrides)
        corrector = SlackCorrector(0.0)
        return SlackAutoTuner(corrector, AutoTuneConfig(**defaults)), corrector

    def test_initial_slack_applied(self):
        tuner, corrector = self.make_tuner()
        assert corrector.slack == pytest.approx(0.4)

    def test_pressure_increases_slack(self):
        tuner, corrector = self.make_tuner()
        tuner.observe_window(pressure_events=2)
        assert corrector.slack == pytest.approx(0.4 + 2 * 0.25)

    def test_slack_clamped_at_max(self):
        tuner, corrector = self.make_tuner(max_slack=0.5)
        tuner.observe_window(pressure_events=100)
        assert corrector.slack == pytest.approx(0.5)

    def test_decay_requires_clean_streak(self):
        tuner, corrector = self.make_tuner()
        tuner.observe_window(0)
        tuner.observe_window(0)
        assert corrector.slack == pytest.approx(0.4)  # streak not yet long enough
        tuner.observe_window(0)
        assert corrector.slack == pytest.approx(0.4 * 0.9)

    def test_pressure_resets_clean_streak(self):
        tuner, corrector = self.make_tuner()
        tuner.observe_window(0)
        tuner.observe_window(0)
        tuner.observe_window(1)  # resets the streak and bumps slack
        tuner.observe_window(0)
        tuner.observe_window(0)
        assert corrector.slack == pytest.approx(0.65)  # no decay yet

    def test_decay_clamped_at_min(self):
        tuner, corrector = self.make_tuner(
            min_slack=0.35, clean_windows_before_decay=1
        )
        for _ in range(50):
            tuner.observe_window(0)
        assert corrector.slack == pytest.approx(0.35)

    def test_adjustments_recorded(self):
        tuner, _ = self.make_tuner()
        tuner.observe_window(1)
        tuner.observe_window(1)
        assert len(tuner.adjustments) == 3  # initial + two bumps

    def test_negative_pressure_rejected(self):
        tuner, _ = self.make_tuner()
        with pytest.raises(ValueError):
            tuner.observe_window(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoTuneConfig(initial_slack=5.0, max_slack=1.0)
        with pytest.raises(ValueError):
            AutoTuneConfig(increase_step=0.0)
        with pytest.raises(ValueError):
            AutoTuneConfig(decay_factor=1.0)
        with pytest.raises(ValueError):
            AutoTuneConfig(clean_windows_before_decay=0)


class TestHermesIntegration:
    def test_auto_tune_requires_slack_corrector(self):
        with pytest.raises(ValueError):
            HermesInstaller(
                pica8_p3290(),
                config=HermesConfig(auto_tune=True, corrector="deadzone"),
            )

    def test_auto_tune_requires_predictive_trigger(self):
        with pytest.raises(ValueError):
            HermesInstaller(
                pica8_p3290(),
                config=HermesConfig(auto_tune=True, threshold=0.5),
            )

    def test_pressure_raises_slack_online(self):
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                guarantee=GuaranteeSpec.milliseconds(5),
                auto_tune=True,
                shadow_capacity=8,  # tiny shadow: pressure is easy to cause
                admission_control=False,
                lowest_priority_fastpath=False,
                epoch=0.01,  # several tuning windows within the test
            ),
        )
        initial = hermes.auto_tuner.slack
        time = 0.0
        for index in range(200):
            hermes.advance_time(time)
            hermes.apply(
                FlowMod.add(
                    Rule.from_prefix(
                        f"10.{index // 200}.{index % 200}.0/24",
                        100 + index,
                        Action.output(1),
                    )
                )
            )
            time += 5e-4  # 2000 rules/s against an 8-entry shadow
        assert hermes.auto_tuner.slack > initial
        assert len(hermes.auto_tuner.adjustments) > 1

    def test_quiet_workload_decays_slack(self):
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                guarantee=GuaranteeSpec.milliseconds(5), auto_tune=True
            ),
        )
        initial = hermes.auto_tuner.slack
        time = 0.0
        for index in range(60):
            hermes.advance_time(time)
            hermes.apply(
                FlowMod.add(
                    Rule.from_prefix(
                        f"10.0.{index % 200}.0/24", 100 + index, Action.output(1)
                    )
                )
            )
            time += 0.2  # 5 rules/s: trivially clean
        assert hermes.auto_tuner.slack < initial
