"""Tests for Algorithm 1 (rule partitioning) and the mapping set M."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    PartitionMap,
    detect_overlaps,
    eliminate_overlap,
    merge_matches,
    partition_new_rule,
)
from repro.tcam import Action, Prefix, Rule, TernaryMatch


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def covered_keys(matches, width=8):
    keys = set()
    for match in matches:
        keys |= {k for k in range(1 << width) if match.matches(k)}
    return keys


class TestDetectOverlaps:
    def test_only_higher_priority_counts(self):
        new = rule("10.0.0.0/8", 50)
        main = [rule("10.0.0.0/16", 10), rule("10.1.0.0/16", 90)]
        blockers = detect_overlaps(new, main)
        assert [b.priority for b in blockers] == [90]

    def test_equal_priority_is_not_a_blocker(self):
        new = rule("10.0.0.0/8", 50)
        assert detect_overlaps(new, [rule("10.0.0.0/16", 50)]) == []

    def test_disjoint_rules_ignored(self):
        new = rule("10.0.0.0/8", 50)
        assert detect_overlaps(new, [rule("11.0.0.0/8", 99)]) == []


class TestPartitionNewRule:
    def test_no_overlap_returns_rule_unchanged(self):
        new = rule("10.0.0.0/8", 50)
        outcome = partition_new_rule(new, [rule("11.0.0.0/8", 99)])
        assert outcome.fragments == [new]
        assert not outcome.was_partitioned

    def test_figure5a_subsumed_rule_is_ignored(self):
        # Main holds a larger, higher-priority rule wholly covering the new
        # rule: the new rule could never match and must not be installed.
        new = rule("10.1.0.0/16", 10)
        outcome = partition_new_rule(new, [rule("10.0.0.0/8", 99)])
        assert outcome.subsumed
        assert outcome.fragments == []

    def test_figure5b_subsuming_rule_is_cut_around_hole(self):
        # The new rule contains a smaller higher-priority main rule: the new
        # rule is partitioned so packets of the hole still hit the main table.
        new = rule("192.168.1.0/24", 10, port=2)
        blocker = rule("192.168.1.0/26", 99, port=1)
        outcome = partition_new_rule(new, [blocker])
        fragment_prefixes = sorted(
            str(fragment.match.to_prefix()) for fragment in outcome.fragments
        )
        assert fragment_prefixes == ["192.168.1.128/25", "192.168.1.64/26"]
        for fragment in outcome.fragments:
            assert not fragment.match.overlaps(blocker.match)
            assert fragment.priority == new.priority
            assert fragment.action == new.action
            assert fragment.origin_id == new.rule_id

    def test_figure4_scenario_correctness(self):
        # The motivating example: /24 -> port 2 (low prio) arrives while
        # /26 -> port 1 (high prio) sits in the main table.
        blocker = rule("192.168.1.0/26", 99, port=1)
        new = rule("192.168.1.0/24", 10, port=2)
        outcome = partition_new_rule(new, [blocker])
        probe = Prefix.from_string("192.168.1.5").network
        # No fragment may capture 192.168.1.5 — it belongs to the main rule.
        assert not any(f.match.matches(probe) for f in outcome.fragments)

    def test_multiple_blockers_cut_iteratively(self):
        new = rule("10.0.0.0/8", 10)
        blockers = [rule("10.0.0.0/10", 99), rule("10.192.0.0/10", 88)]
        outcome = partition_new_rule(new, blockers)
        assert outcome.cuts == 2
        for fragment in outcome.fragments:
            for blocker in blockers:
                assert not fragment.match.overlaps(blocker.match)

    def test_joint_subsumption_by_several_blockers(self):
        new = rule("10.0.0.0/9", 10)
        halves = [rule("10.0.0.0/10", 99), rule("10.64.0.0/10", 98)]
        outcome = partition_new_rule(new, halves)
        assert outcome.subsumed
        assert outcome.fragments == []

    def test_blocker_ids_recorded(self):
        blocker = rule("10.0.0.0/16", 99)
        outcome = partition_new_rule(rule("10.0.0.0/8", 10), [blocker])
        assert outcome.blockers == frozenset({blocker.rule_id})

    def test_fragments_cover_exactly_rule_minus_blockers(self):
        new = rule("10.0.0.0/8", 10)
        blockers = [rule("10.16.0.0/12", 99), rule("10.128.0.0/9", 88)]
        outcome = partition_new_rule(new, blockers)
        fragment_prefixes = [f.match.to_prefix() for f in outcome.fragments]
        blocker_prefixes = [b.match.to_prefix() for b in blockers]
        expected = new.match.to_prefix().subtract_all(blocker_prefixes)
        from repro.tcam import covers_same_addresses

        assert covers_same_addresses(fragment_prefixes, expected)


class TestMergeMatches:
    def test_prefix_fragments_merge_optimally(self):
        fragments = [
            TernaryMatch.from_string("10.0.0.0/9"),
            TernaryMatch.from_string("10.128.0.0/9"),
        ]
        merged = merge_matches(fragments)
        assert merged == [TernaryMatch.from_string("10.0.0.0/8")]

    def test_general_ternary_dedup_and_containment(self):
        wide = TernaryMatch.from_string("1***")
        narrow = TernaryMatch.from_string("10*1")
        assert merge_matches([wide, narrow, wide]) == [wide]

    def test_empty(self):
        assert merge_matches([]) == []


class TestEliminateOverlap:
    def test_cuts_every_match(self):
        matches = [TernaryMatch.from_string("10**"), TernaryMatch.from_string("11**")]
        blocker = TernaryMatch.from_string("1*1*")
        survivors = eliminate_overlap(matches, blocker)
        for survivor in survivors:
            assert not survivor.overlaps(blocker)
        assert covered_keys(survivors, width=4) == covered_keys(
            matches, width=4
        ) - covered_keys([blocker], width=4)


class TestPartitionMap:
    def make_partitioned(self):
        pmap = PartitionMap()
        blocker = rule("10.0.0.0/16", 99)
        original = rule("10.0.0.0/8", 10)
        outcome = partition_new_rule(original, [blocker])
        pmap.record(original, outcome)
        return pmap, original, blocker, outcome

    def test_record_and_query(self):
        pmap, original, _, outcome = self.make_partitioned()
        assert pmap.is_partitioned(original.rule_id)
        assert pmap.original(original.rule_id) == original
        assert pmap.fragment_ids(original.rule_id) == {
            f.rule_id for f in outcome.fragments
        }

    def test_unpartitioned_rule_not_recorded(self):
        pmap = PartitionMap()
        original = rule("10.0.0.0/8", 10)
        outcome = partition_new_rule(original, [])
        pmap.record(original, outcome)
        assert not pmap.is_partitioned(original.rule_id)
        assert len(pmap) == 0

    def test_forget_blocker_returns_originals(self):
        pmap, original, blocker, _ = self.make_partitioned()
        restored = pmap.forget_blocker(blocker.rule_id)
        assert restored == [original]
        assert not pmap.is_partitioned(original.rule_id)

    def test_forget_blocker_unknown_id_is_empty(self):
        pmap, *_ = self.make_partitioned()
        assert pmap.forget_blocker(999999) == []

    def test_forget_origin_clears_blocker_link(self):
        pmap, original, blocker, _ = self.make_partitioned()
        pmap.forget(original.rule_id)
        assert pmap.forget_blocker(blocker.rule_id) == []

    def test_subsumed_rule_tracked_for_restoration(self):
        pmap = PartitionMap()
        blocker = rule("10.0.0.0/8", 99)
        original = rule("10.1.0.0/16", 10)
        outcome = partition_new_rule(original, [blocker])
        assert outcome.subsumed
        pmap.record(original, outcome)
        assert pmap.is_partitioned(original.rule_id)
        assert pmap.fragment_ids(original.rule_id) == set()
        assert pmap.forget_blocker(blocker.rule_id) == [original]

    def test_expected_partitions(self):
        pmap, *_ = self.make_partitioned()
        assert pmap.expected_partitions() >= 1.0
        assert PartitionMap().expected_partitions() == 1.0

    def test_update_original(self):
        pmap, original, _, _ = self.make_partitioned()
        refreshed = Rule(
            match=original.match,
            priority=original.priority,
            action=Action.drop(),
            rule_id=original.rule_id,
        )
        pmap.update_original(original.rule_id, refreshed)
        assert pmap.original(original.rule_id).action == Action.drop()
        with pytest.raises(KeyError):
            pmap.update_original(424242, refreshed)

    def test_replace_fragments(self):
        pmap, original, _, _ = self.make_partitioned()
        pmap.replace_fragments(original.rule_id, [1, 2, 3])
        assert pmap.fragment_ids(original.rule_id) == {1, 2, 3}


@st.composite
def small_prefixes(draw):
    """Prefixes inside 10.0.0.0/8 with lengths 8-16 (high overlap chance)."""
    length = draw(st.integers(min_value=8, max_value=16))
    bits = draw(st.integers(min_value=0, max_value=(1 << (length - 8)) - 1))
    network = (10 << 24) | (bits << (32 - length))
    return Prefix(network, length)


class TestPartitionIdempotence:
    @given(
        st.lists(
            st.tuples(small_prefixes(), st.integers(min_value=50, max_value=100)),
            min_size=1,
            max_size=6,
        ),
        small_prefixes(),
    )
    def test_fragments_are_stable_under_repartition(self, blocker_specs, new_prefix):
        """Re-partitioning a fragment against the same blockers is a no-op:
        Algorithm 1's output contains no residual overlap."""
        blockers = [
            Rule.from_prefix(prefix, priority, Action.output(1))
            for prefix, priority in blocker_specs
        ]
        new = Rule.from_prefix(new_prefix, 10, Action.output(2))
        outcome = partition_new_rule(new, blockers)
        for fragment in outcome.fragments:
            again = partition_new_rule(fragment, blockers)
            assert not again.was_partitioned
            assert again.fragments == [fragment]


class TestPartitionProperties:
    @given(
        st.lists(
            st.tuples(small_prefixes(), st.integers(min_value=1, max_value=100)),
            min_size=1,
            max_size=8,
        ),
        small_prefixes(),
        st.integers(min_value=1, max_value=100),
    )
    def test_partition_preserves_monolithic_semantics(
        self, main_specs, new_prefix, new_priority
    ):
        """For any main table and new rule: probing (shadow fragments first,
        then main) gives the same action as a monolithic table would."""
        main_rules = [
            Rule.from_prefix(prefix, priority, Action.output(10 + index))
            for index, (prefix, priority) in enumerate(main_specs)
        ]
        new = Rule.from_prefix(new_prefix, new_priority, Action.output(2))
        outcome = partition_new_rule(new, main_rules)

        def monolithic(key):
            candidates = [
                r for r in main_rules + [new] if r.match.matches(key)
            ]
            if not candidates:
                return None
            best = max(candidates, key=lambda r: (r.priority, -r.rule_id))
            return best.action

        def hermes(key):
            for fragment in outcome.fragments:
                if fragment.match.matches(key):
                    return fragment.action
            candidates = [r for r in main_rules if r.match.matches(key)]
            if not candidates:
                return None
            best = max(candidates, key=lambda r: (r.priority, -r.rule_id))
            return best.action

        probes = {new.match.to_prefix().first_address}
        probes.add(new.match.to_prefix().last_address)
        for resident in main_rules:
            prefix = resident.match.to_prefix()
            probes |= {prefix.first_address, prefix.last_address}
        for fragment in outcome.fragments:
            prefix = fragment.match.to_prefix()
            probes |= {prefix.first_address, prefix.last_address}
        for key in probes:
            mono = monolithic(key)
            herm = hermes(key)
            # Ties between equal-priority overlapping rules are
            # implementation-defined in a TCAM; skip those probes.
            contenders = [
                r.priority for r in main_rules + [new] if r.match.matches(key)
            ]
            if len([p for p in contenders if p == max(contenders, default=0)]) > 1:
                continue
            assert mono == herm, f"key {key}: monolithic={mono} hermes={herm}"
