"""Tests for the Section 7 operator API (HermesService)."""

import pytest

from repro.core import GuaranteeSpec, HermesService, priority_at_least
from repro.switchsim import FlowMod
from repro.tcam import Action, Rule, dell_8132f, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


@pytest.fixture
def service():
    svc = HermesService()
    svc.register_switch("edge-1", pica8_p3290())
    svc.register_switch("edge-2", dell_8132f())
    return svc


class TestCreateTCAMQoS:
    def test_returns_handle_with_burst_rate(self, service):
        handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
        assert handle.shadow_id > 0
        assert handle.max_burst_rate > 0
        assert 0 < handle.overhead < 0.05
        assert handle.switch_id == "edge-1"

    def test_descriptors_are_unique(self, service):
        first = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
        second = service.CreateTCAMQoS("edge-2", GuaranteeSpec.milliseconds(5))
        assert first.shadow_id != second.shadow_id

    def test_unknown_switch_raises(self, service):
        with pytest.raises(KeyError):
            service.CreateTCAMQoS("nope", GuaranteeSpec.milliseconds(5))

    def test_infeasible_guarantee_raises(self, service):
        with pytest.raises(ValueError):
            service.CreateTCAMQoS("edge-1", GuaranteeSpec(1e-9))

    def test_created_installer_enforces_predicate(self, service):
        handle = service.CreateTCAMQoS(
            "edge-1", GuaranteeSpec.milliseconds(5), priority_at_least(100)
        )
        installer = service.installer(handle.shadow_id)
        high = installer.apply(FlowMod.add(rule("10.0.0.0/8", 200)))
        low = installer.apply(FlowMod.add(rule("11.0.0.0/8", 5)))
        assert high.used_guaranteed_path
        assert not low.used_guaranteed_path

    def test_duplicate_switch_registration_rejected(self, service):
        with pytest.raises(ValueError):
            service.register_switch("edge-1", pica8_p3290())


class TestModAndDelete:
    def test_mod_qos_config_resizes(self, service):
        handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
        assert service.ModQoSConfig(handle.shadow_id, GuaranteeSpec.milliseconds(1))
        updated = service.handle(handle.shadow_id)
        assert updated.shadow_capacity < handle.shadow_capacity
        assert updated.overhead < handle.overhead

    def test_mod_qos_match_swaps_predicate(self, service):
        handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
        assert service.ModQoSMatch(handle.shadow_id, priority_at_least(500))
        installer = service.installer(handle.shadow_id)
        result = installer.apply(FlowMod.add(rule("10.0.0.0/8", 5)))
        assert not result.used_guaranteed_path

    def test_delete_qos_drains_and_stops_guaranteeing(self, service):
        handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
        installer = service.installer(handle.shadow_id)
        installer.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert service.DeleteQoS(handle.shadow_id)
        assert installer.shadow.occupancy == 0  # drained into main
        late = installer.apply(FlowMod.add(rule("11.0.0.0/8", 50)))
        assert not late.used_guaranteed_path
        with pytest.raises(KeyError):
            service.installer(handle.shadow_id)

    def test_mutations_on_unknown_descriptor_return_false(self, service):
        assert not service.DeleteQoS(999)
        assert not service.ModQoSConfig(999, GuaranteeSpec.milliseconds(5))
        assert not service.ModQoSMatch(999, priority_at_least(1))


class TestQoSOverheads:
    def test_matches_direct_computation(self, service):
        from repro.core import asic_overhead

        overhead = service.QoSOverheads("edge-1", GuaranteeSpec.milliseconds(5))
        assert overhead == pytest.approx(
            asic_overhead(pica8_p3290(), GuaranteeSpec.milliseconds(5))
        )

    def test_looser_guarantee_allows_bigger_shadow(self, service):
        tight = service.QoSOverheads("edge-2", GuaranteeSpec.milliseconds(1))
        loose = service.QoSOverheads("edge-2", GuaranteeSpec.milliseconds(10))
        assert tight < loose or tight == pytest.approx(loose)
        assert service.QoSOverheads("edge-2", GuaranteeSpec.milliseconds(5)) <= loose

    def test_snake_case_aliases(self, service):
        handle = service.create_tcam_qos("edge-1", GuaranteeSpec.milliseconds(5))
        assert service.mod_qos_match(handle.shadow_id, priority_at_least(1))
        assert service.qos_overheads("edge-1", GuaranteeSpec.milliseconds(5)) > 0
        assert service.delete_qos(handle.shadow_id)
