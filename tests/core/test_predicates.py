"""Tests for the match-predicate vocabulary (Section 7)."""

import pytest

from repro.core.predicates import (
    Predicate,
    action_kind,
    everything,
    nothing,
    output_port_in,
    overlapping_prefix,
    priority_band,
    within_prefix,
)
from repro.tcam import Action, Rule, TernaryMatch


def rule(prefix, priority, action=None):
    return Rule.from_prefix(prefix, priority, action or Action.output(1))


class TestBasicPredicates:
    def test_everything_and_nothing(self):
        r = rule("10.0.0.0/8", 5)
        assert everything()(r)
        assert not nothing()(r)

    def test_within_prefix(self):
        inside = within_prefix("10.0.0.0/8")
        assert inside(rule("10.1.0.0/16", 5))
        assert inside(rule("10.0.0.0/8", 5))
        assert not inside(rule("11.0.0.0/8", 5))
        assert not inside(rule("0.0.0.0/0", 5))  # wider than the region

    def test_within_prefix_accepts_prefix_object(self):
        from repro.tcam import Prefix

        inside = within_prefix(Prefix.from_string("10.0.0.0/8"))
        assert inside(rule("10.2.0.0/16", 1))

    def test_overlapping_prefix(self):
        touches = overlapping_prefix("10.0.0.0/8")
        assert touches(rule("10.1.0.0/16", 5))
        assert touches(rule("0.0.0.0/0", 5))  # contains the region
        assert not touches(rule("11.0.0.0/8", 5))

    def test_priority_band(self):
        band = priority_band(10, 20)
        assert band(rule("10.0.0.0/8", 10))
        assert band(rule("10.0.0.0/8", 20))
        assert not band(rule("10.0.0.0/8", 9))
        assert not band(rule("10.0.0.0/8", 21))

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError):
            priority_band(20, 10)

    def test_action_kind(self):
        drops = action_kind("drop")
        assert drops(rule("10.0.0.0/8", 5, Action.drop()))
        assert not drops(rule("10.0.0.0/8", 5))
        with pytest.raises(ValueError):
            action_kind("teleport")

    def test_output_port_in(self):
        uplinks = output_port_in([47, 48])
        assert uplinks(rule("10.0.0.0/8", 5, Action.output(48)))
        assert not uplinks(rule("10.0.0.0/8", 5, Action.output(1)))
        assert not uplinks(rule("10.0.0.0/8", 5, Action.drop()))


class TestCombinators:
    def test_and(self):
        combo = within_prefix("10.0.0.0/8") & priority_band(10, 99)
        assert combo(rule("10.1.0.0/16", 50))
        assert not combo(rule("10.1.0.0/16", 5))
        assert not combo(rule("11.0.0.0/8", 50))

    def test_or(self):
        combo = within_prefix("10.0.0.0/8") | within_prefix("11.0.0.0/8")
        assert combo(rule("10.1.0.0/16", 1))
        assert combo(rule("11.1.0.0/16", 1))
        assert not combo(rule("12.0.0.0/8", 1))

    def test_not(self):
        outside = ~within_prefix("10.0.0.0/8")
        assert outside(rule("11.0.0.0/8", 1))
        assert not outside(rule("10.1.0.0/16", 1))

    def test_description_composes(self):
        combo = ~(within_prefix("10.0.0.0/8") & priority_band(1, 5))
        assert "within 10.0.0.0/8" in combo.description
        assert "priority in [1, 5]" in combo.description
        assert repr(combo).startswith("Predicate(")


class TestHermesIntegration:
    def test_predicate_routes_guarantees(self):
        from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller
        from repro.switchsim import FlowMod
        from repro.tcam import pica8_p3290

        tenant = within_prefix("10.0.0.0/8") & priority_band(100, 999)
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(guarantee=GuaranteeSpec.milliseconds(5)),
            predicate=tenant,
        )
        covered = hermes.apply(FlowMod.add(rule("10.1.0.0/16", 200)))
        uncovered = hermes.apply(FlowMod.add(rule("192.168.0.0/16", 200)))
        assert covered.used_guaranteed_path
        assert not uncovered.used_guaranteed_path
