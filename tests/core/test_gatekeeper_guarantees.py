"""Tests for the Gate Keeper (token bucket, predicates) and guarantee math."""

import math

import pytest

from repro.core import (
    GateKeeper,
    GuaranteeSpec,
    TokenBucket,
    asic_overhead,
    estimate_migration_time,
    match_all,
    max_insertion_rate,
    priority_at_least,
    shadow_capacity_for,
)
from repro.tcam import Action, Rule, dell_8132f, hp_5406zl, ideal_switch, pica8_p3290


def rule(prefix, priority):
    return Rule.from_prefix(prefix, priority, Action.output(1))


class TestTokenBucket:
    def test_burst_is_available_immediately(self):
        bucket = TokenBucket(rate=10, burst=5)
        assert all(bucket.try_consume(0.0) for _ in range(5))
        assert not bucket.try_consume(0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10, burst=5)
        for _ in range(5):
            bucket.try_consume(0.0)
        assert not bucket.try_consume(0.0)
        assert bucket.try_consume(0.1)  # one token refilled

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=1000, burst=3)
        bucket.try_consume(0.0)
        bucket._refill(1000.0)
        assert bucket.tokens == pytest.approx(3)

    def test_infinite_rate(self):
        bucket = TokenBucket(rate=math.inf, burst=2)
        bucket.try_consume(0.0)
        bucket.try_consume(0.0)
        assert bucket.try_consume(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=5)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=0)

    def test_amount_must_be_positive(self):
        bucket = TokenBucket(rate=10, burst=5)
        with pytest.raises(ValueError):
            bucket.try_consume(0.0, amount=0)
        with pytest.raises(ValueError):
            bucket.try_consume(0.0, amount=-1)

    def test_time_cannot_go_backwards(self):
        bucket = TokenBucket(rate=10, burst=5)
        bucket.try_consume(1.0)
        with pytest.raises(ValueError):
            bucket.try_consume(0.5)

    def test_sustained_rate_enforced(self):
        bucket = TokenBucket(rate=100, burst=10)
        admitted = 0
        time = 0.0
        for _ in range(1000):  # offered load: 1000 actions over 1 second
            if bucket.try_consume(time):
                admitted += 1
            time += 0.001
        assert admitted <= 10 + 100 + 1  # burst + one second of rate


class TestGateKeeper:
    def test_guaranteed_path_by_default(self):
        gate = GateKeeper()
        decision = gate.decide(
            rule("10.0.0.0/8", 50), 0.0, shadow_has_room=True, main_lowest_priority=10
        )
        assert decision.use_shadow and decision.reason == "guaranteed"

    def test_predicate_miss_diverts(self):
        gate = GateKeeper(predicate=priority_at_least(100))
        decision = gate.decide(
            rule("10.0.0.0/8", 50), 0.0, shadow_has_room=True, main_lowest_priority=10
        )
        assert not decision.use_shadow and decision.reason == "predicate-miss"

    def test_lowest_priority_fastpath(self):
        gate = GateKeeper()
        decision = gate.decide(
            rule("0.0.0.0/0", 5), 0.0, shadow_has_room=True, main_lowest_priority=10
        )
        assert not decision.use_shadow
        assert decision.reason == "lowest-priority-fastpath"

    def test_fastpath_disabled(self):
        gate = GateKeeper(lowest_priority_fastpath=False)
        decision = gate.decide(
            rule("0.0.0.0/0", 5), 0.0, shadow_has_room=True, main_lowest_priority=10
        )
        assert decision.use_shadow

    def test_fastpath_ignored_when_main_empty(self):
        gate = GateKeeper()
        decision = gate.decide(
            rule("10.0.0.0/8", 5), 0.0, shadow_has_room=True, main_lowest_priority=None
        )
        assert decision.use_shadow

    def test_shadow_full_diverts(self):
        gate = GateKeeper()
        decision = gate.decide(
            rule("10.0.0.0/8", 50), 0.0, shadow_has_room=False, main_lowest_priority=10
        )
        assert not decision.use_shadow and decision.reason == "shadow-full"

    def test_rate_limit_diverts_excess(self):
        gate = GateKeeper(bucket=TokenBucket(rate=1, burst=2))
        outcomes = [
            gate.decide(
                rule("10.0.0.0/8", 50),
                0.0,
                shadow_has_room=True,
                main_lowest_priority=10,
            ).use_shadow
            for _ in range(4)
        ]
        assert outcomes == [True, True, False, False]
        assert gate.admitted == 2
        assert gate.diverted == 2

    def test_degraded_diverts_everything(self):
        gate = GateKeeper()
        decision = gate.decide(
            rule("10.0.0.0/8", 50),
            0.0,
            shadow_has_room=True,
            main_lowest_priority=10,
            degraded=True,
        )
        assert not decision.use_shadow and decision.reason == "degraded"

    @pytest.mark.parametrize(
        "reason,make_gate,kwargs,use_shadow",
        [
            ("guaranteed", lambda: GateKeeper(), {}, True),
            (
                "predicate-miss",
                lambda: GateKeeper(predicate=priority_at_least(100)),
                {},
                False,
            ),
            ("degraded", lambda: GateKeeper(), {"degraded": True}, False),
            (
                "lowest-priority-fastpath",
                lambda: GateKeeper(),
                {"priority": 5},
                False,
            ),
            ("shadow-full", lambda: GateKeeper(), {"shadow_has_room": False}, False),
            (
                "rate-limited",
                lambda: GateKeeper(bucket=TokenBucket(rate=1, burst=1)),
                {"warmup": 1},
                False,
            ),
        ],
    )
    def test_every_documented_reason_is_reachable(
        self, reason, make_gate, kwargs, use_shadow
    ):
        # Each documented GateDecision.reason must be producible, and the
        # gate must tally it under exactly that name.
        gate = make_gate()
        priority = kwargs.pop("priority", 50)
        warmup = kwargs.pop("warmup", 0)
        call = dict(
            shadow_has_room=kwargs.pop("shadow_has_room", True),
            main_lowest_priority=10,
            **kwargs,
        )
        for _ in range(warmup):  # exhaust the bucket for the rate-limited case
            gate.decide(rule("10.0.0.0/8", priority), 0.0, **call)
        decision = gate.decide(rule("10.0.0.0/8", priority), 0.0, **call)
        assert decision.reason == reason
        assert decision.use_shadow is use_shadow
        assert gate.reason_counts[reason] >= 1

    def test_match_all(self):
        assert match_all(rule("10.0.0.0/8", 1))


class TestGuaranteeSpec:
    def test_milliseconds_constructor(self):
        assert GuaranteeSpec.milliseconds(5).insertion_latency == pytest.approx(5e-3)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            GuaranteeSpec(0.0)


class TestShadowSizing:
    def test_five_ms_on_pica8_is_under_five_percent(self):
        spec = GuaranteeSpec.milliseconds(5)
        assert asic_overhead(pica8_p3290(), spec) < 0.05

    def test_overhead_decreases_with_looser_guarantee(self):
        for timing in (pica8_p3290(), dell_8132f(), hp_5406zl()):
            overheads = [
                asic_overhead(timing, GuaranteeSpec.milliseconds(ms))
                for ms in (1, 5, 10)
            ]
            assert overheads == sorted(overheads)
            assert all(0 < o <= 1 for o in overheads)

    def test_infeasible_guarantee_raises(self):
        with pytest.raises(ValueError):
            shadow_capacity_for(pica8_p3290(), GuaranteeSpec(1e-9))

    def test_ideal_switch_has_full_capacity_shadow(self):
        timing = ideal_switch()
        spec = GuaranteeSpec.milliseconds(1)
        assert shadow_capacity_for(timing, spec) == timing.capacity


class TestEquations:
    def test_equation1(self):
        # lambda = S_ST / t_m
        assert max_insertion_rate(100, migration_time=0.1) == pytest.approx(1000)

    def test_equation2_partitions_reduce_rate(self):
        base = max_insertion_rate(100, migration_time=0.1)
        fragmented = max_insertion_rate(
            100, migration_time=0.1, expected_partitions=2.0
        )
        assert fragmented == pytest.approx(base / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_insertion_rate(0, 0.1)
        with pytest.raises(ValueError):
            max_insertion_rate(10, 0.0)
        with pytest.raises(ValueError):
            max_insertion_rate(10, 0.1, expected_partitions=0.5)

    def test_migration_time_grows_with_rules(self):
        timing = pica8_p3290()
        small = estimate_migration_time(timing, 50, 500)
        large = estimate_migration_time(timing, 500, 500)
        assert large > small

    def test_migration_time_validation(self):
        with pytest.raises(ValueError):
            estimate_migration_time(pica8_p3290(), -1, 0)
