"""Tests for Hermes under faults: degraded mode and verified TCAM writes."""

from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller
from repro.faults import FaultInjector, FaultPlan, TcamWriteFault
from repro.switchsim import FlowMod
from repro.tcam import Action, Rule, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def make_hermes(plan=None, seed=0, **config_kwargs):
    config_kwargs.setdefault("guarantee", GuaranteeSpec.milliseconds(5))
    injector = FaultInjector(plan, seed=seed) if plan is not None else None
    return HermesInstaller(
        pica8_p3290(), config=HermesConfig(**config_kwargs), injector=injector
    )


def invariant_violations(hermes):
    return sum(
        1
        for main_rule in hermes.main.rules()
        for shadow_rule in hermes.shadow.rules()
        if main_rule.priority > shadow_rule.priority
        and main_rule.overlaps(shadow_rule)
    )


class TestDegradedMode:
    def test_window_lifecycle(self):
        hermes = make_hermes(degraded_window=1.0)
        assert not hermes.is_degraded(0.0)
        hermes.enter_degraded(2.0)
        assert hermes.is_degraded(2.5)
        assert not hermes.is_degraded(3.0)  # window expired
        assert not hermes.is_degraded(2.5)  # and stays cleared

    def test_repeated_entries_extend_not_shrink(self):
        hermes = make_hermes(degraded_window=1.0)
        hermes.enter_degraded(2.0, duration=5.0)
        hermes.enter_degraded(2.5)  # shorter window must not shrink the first
        assert hermes.is_degraded(6.0)

    def test_degraded_inserts_bypass_shadow(self):
        hermes = make_hermes()
        hermes.advance_time(1.0)
        hermes.enter_degraded(1.0)
        shadow_before = hermes.shadow.occupancy
        result = hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert not result.used_guaranteed_path
        assert hermes.shadow.occupancy == shadow_before
        assert hermes.degraded_inserts == 1
        assert hermes.gate_keeper.reason_counts.get("degraded", 0) == 1

    def test_guarantee_returns_after_window(self):
        hermes = make_hermes(degraded_window=1.0)
        hermes.advance_time(1.0)
        hermes.enter_degraded(1.0)
        hermes.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        hermes.advance_time(5.0)
        result = hermes.apply(FlowMod.add(rule("10.1.0.0/16", 60)))
        assert result.used_guaranteed_path


class TestVerifiedWrites:
    def test_silent_write_faults_cannot_lose_inserts(self):
        # 30% of TCAM writes silently no-op; every accepted ADD must still
        # end up physically resident somewhere.
        plan = FaultPlan(tcam=TcamWriteFault(silent=0.3))
        hermes = make_hermes(plan=plan, seed=7)
        accepted = 0
        for index in range(40):
            result = hermes.apply(
                FlowMod.add(rule(f"10.{index // 8}.{(index * 8) % 256}.0/24", 50 + index))
            )
            accepted += 1
            assert result.latency > 0
        # Verification re-issues silent no-ops; the rare install that
        # exhausts its retry budget is *accounted*, never silently lost.
        resident = hermes.shadow.occupancy + hermes.main.occupancy
        lost = hermes.injector.log.count("install-lost")
        assert resident + lost == accepted
        assert lost <= 2  # retry budget makes loss (0.3^3)-rare
        assert hermes.injector.log.count("tcam-write-silent") > 0

    def test_migration_reissues_silently_lost_writes(self):
        plan = FaultPlan(tcam=TcamWriteFault(silent=0.3))
        hermes = make_hermes(plan=plan, seed=3, shadow_capacity=8)
        now = 0.0
        installed = 0
        for index in range(64):
            now += 0.05
            hermes.advance_time(now)
            hermes.apply(
                FlowMod.add(
                    rule(f"10.{index % 16}.{(index * 4) % 256}.0/24", 40 + index)
                )
            )
            installed += 1
        hermes.advance_time(now + 10.0)  # let migrations drain
        assert len(hermes.rule_manager.migrations) > 0
        assert hermes.rule_manager.reissued_writes > 0  # faults did land
        assert invariant_violations(hermes) == 0
        resident = hermes.shadow.occupancy + hermes.main.occupancy
        lost = hermes.injector.log.count("install-lost") + hermes.injector.log.count(
            "migration-strand-lost"
        )
        assert resident + lost == installed

    def test_null_plan_injector_changes_nothing(self):
        plain = make_hermes()
        faulty = make_hermes(plan=FaultPlan(), seed=0)
        for index in range(20):
            a = plain.apply(FlowMod.add(rule(f"10.0.{index}.0/24", 50 + index)))
            b = faulty.apply(FlowMod.add(rule(f"10.0.{index}.0/24", 50 + index)))
            assert a.latency == b.latency
            assert a.used_guaranteed_path == b.used_guaranteed_path
        assert plain.shadow.occupancy == faulty.shadow.occupancy
        assert plain.main.occupancy == faulty.main.occupancy
