"""Tests for multi-table Hermes (Section 6)."""

import pytest

from repro.core import (
    GuaranteeSpec,
    HermesInstaller,
    LogicalTableSpec,
    MultiTableHermes,
)
from repro.switchsim import DirectInstaller, FlowMod, MissBehavior
from repro.tcam import Action, Prefix, Rule, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def key(address):
    return Prefix.from_string(address).network


def make_switch():
    return MultiTableHermes(
        pica8_p3290,
        [
            LogicalTableSpec(
                name="acl",
                guarantee=GuaranteeSpec.milliseconds(1),
                on_miss=MissBehavior.GOTO_NEXT,
            ),
            LogicalTableSpec(
                name="forwarding",
                guarantee=GuaranteeSpec.milliseconds(10),
                on_miss=MissBehavior.DROP,
            ),
        ],
    )


class TestConstruction:
    def test_per_table_installer_kinds(self):
        switch = MultiTableHermes(
            pica8_p3290,
            [
                LogicalTableSpec("acl", guarantee=GuaranteeSpec.milliseconds(5)),
                LogicalTableSpec("forwarding", guarantee=None),
            ],
        )
        assert isinstance(switch.table("acl"), HermesInstaller)
        assert isinstance(switch.table("forwarding"), DirectInstaller)

    def test_different_guarantees_per_table(self):
        switch = make_switch()
        guarantees = switch.guarantees()
        assert guarantees["acl"] == pytest.approx(1e-3)
        assert guarantees["forwarding"] == pytest.approx(10e-3)
        # Tighter guarantee, smaller shadow.
        assert (
            switch.table("acl").shadow.capacity
            < switch.table("forwarding").shadow.capacity
        )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            MultiTableHermes(pica8_p3290, [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MultiTableHermes(
                pica8_p3290,
                [LogicalTableSpec("x"), LogicalTableSpec("x")],
            )

    def test_table_order_preserved(self):
        assert make_switch().table_names() == ["acl", "forwarding"]


class TestControlPlane:
    def test_apply_targets_named_table(self):
        switch = make_switch()
        switch.apply("acl", FlowMod.add(rule("10.0.0.0/8", 50)))
        assert switch.occupancy()["acl"] == 1
        assert switch.occupancy()["forwarding"] == 0

    def test_guarantee_enforced_per_table(self):
        switch = make_switch()
        result = switch.apply("acl", FlowMod.add(rule("10.0.0.0/8", 50)))
        assert result.used_guaranteed_path
        assert result.latency <= 1e-3

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            make_switch().apply("nat", FlowMod.add(rule("10.0.0.0/8", 1)))

    def test_advance_time_drives_all_tables(self):
        switch = make_switch()
        acl = switch.table("acl")
        # Fill the ACL shadow past the predictive trigger's high watermark.
        fill = int(acl.shadow.capacity * 0.95)
        for index in range(fill):
            switch.apply(
                "acl", FlowMod.add(rule(f"10.{index // 200}.{index % 200}.0/24", 50 + index))
            )
        switch.advance_time(10.0)
        assert acl.shadow.occupancy == 0
        assert acl.main.occupancy == fill

    def test_calm_shadow_is_left_alone(self):
        # With no forecast pressure, migrating would be wasted work.
        switch = make_switch()
        switch.apply("acl", FlowMod.add(rule("10.0.0.0/8", 50)))
        switch.advance_time(10.0)
        assert switch.table("acl").shadow.occupancy == 1


class TestDataPlane:
    def test_pipeline_traversal_and_miss_behaviour(self):
        switch = make_switch()
        switch.apply("acl", FlowMod.add(rule("10.0.0.0/8", 50, port=1)))
        switch.apply("forwarding", FlowMod.add(rule("11.0.0.0/8", 5, port=2)))
        # ACL hit terminates the pipeline.
        assert switch.lookup(key("10.1.1.1")).action.port == 1
        # ACL miss falls through to forwarding.
        assert switch.lookup(key("11.1.1.1")).action.port == 2
        # Forwarding miss (its original behaviour) drops.
        verdict = switch.process(key("192.168.0.1"))
        assert verdict.dropped

    def test_shadow_consulted_before_main_within_table(self):
        switch = make_switch()
        resident = rule("10.0.0.0/8", 90, port=3)
        switch.apply("forwarding", FlowMod.add(resident))
        switch.table("forwarding").rule_manager.migrate(0.0)
        assert switch.table("forwarding").main.occupancy == 1
        assert switch.lookup(key("10.1.1.1")).action.port == 3

    def test_repr_mentions_scheme(self):
        assert "hermes" in repr(make_switch())
