"""Regression tests for cross-table correctness hazards.

Each test pins one scenario originally caught by the churn-differential
property test (tests/integration/test_cross_layer.py): subtle interactions
between the diverted-to-main insertion paths, migration, and Figure 6's
un-partitioning.
"""

import pytest

from repro.core import GuaranteeSpec, HermesConfig, HermesInstaller
from repro.switchsim import FlowMod
from repro.tcam import Action, Prefix, Rule, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def key(address):
    return Prefix.from_string(address).network


def make_hermes(**overrides):
    config = dict(
        guarantee=GuaranteeSpec.milliseconds(5),
        admission_control=False,
        shadow_capacity=32,
    )
    config.update(overrides)
    return HermesInstaller(pica8_p3290(), config=HermesConfig(**config))


class TestMainInsertDominatingShadow:
    """A rule diverted to the main table can dominate shadow residents —
    the mirror image of the Figure 4 hazard."""

    def test_rate_limited_main_insert_repartitions_shadow(self):
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                shadow_capacity=4,
                admission_control=False,
                lowest_priority_fastpath=False,
            ),
        )
        low = rule("10.0.0.0/8", 10, port=1)
        hermes.apply(FlowMod.add(low))  # lands in the shadow
        assert hermes.shadow.occupancy == 1
        # Fill the shadow so the next insert diverts to the main table.
        for index in range(3):
            hermes.apply(FlowMod.add(rule(f"192.168.{index}.0/24", 50)))
        high = rule("10.0.0.0/16", 99, port=2)
        result = hermes.apply(FlowMod.add(high))
        assert not result.used_guaranteed_path  # shadow full: went to main
        # Correctness: inside 10.0/16 the higher-priority main rule wins;
        # the rest of 10/8 still belongs to the shadow rule.
        assert hermes.lookup(key("10.0.1.1")).action.port == 2
        assert hermes.lookup(key("10.9.1.1")).action.port == 1

    def test_fastpath_main_insert_repartitions_shadow(self):
        hermes = make_hermes()
        # Seed the main table so the fastpath has a bottom to compare with.
        seed = rule("172.16.0.0/12", 200)
        hermes.apply(FlowMod.add(seed))
        hermes.rule_manager.migrate(0.0)
        low = rule("10.0.0.0/8", 20, port=1)
        hermes.apply(FlowMod.add(low))  # prio 20 < main lowest? no: 20 < 200
        # 'low' matched the fastpath (priority below the main bottom), so
        # it sits in main; now a shadow rule below it:
        lower = rule("10.0.0.0/9", 5, port=3)
        hermes.apply(FlowMod.add(lower))
        assert hermes.lookup(key("10.1.1.1")).action.port == 1

    def test_dominated_shadow_rule_restored_when_dominator_leaves(self):
        hermes = HermesInstaller(
            pica8_p3290(),
            config=HermesConfig(
                shadow_capacity=4,
                admission_control=False,
                lowest_priority_fastpath=False,
            ),
        )
        low = rule("10.0.0.0/8", 10, port=1)
        hermes.apply(FlowMod.add(low))
        for index in range(3):
            hermes.apply(FlowMod.add(rule(f"192.168.{index}.0/24", 50)))
        high = rule("10.0.0.0/16", 99, port=2)
        hermes.apply(FlowMod.add(high))
        hermes.apply(FlowMod.delete(high.rule_id))
        # The cut-out region belongs to the low rule again.
        assert hermes.lookup(key("10.0.1.1")).action.port == 1


class TestFragmentsInMainAsBlockers:
    """Fragments that migrate into the main table can themselves block
    later insertions; deleting their logical rule must restore the rules
    they blocked."""

    def test_delete_of_migrated_fragments_restores_blocked_rules(self):
        hermes = make_hermes(lowest_priority_fastpath=False)
        # A high-priority rule that will be partitioned: blocked by an even
        # higher-priority main resident.
        resident = rule("10.0.0.0/24", 200, port=9)
        hermes.apply(FlowMod.add(resident))
        hermes.rule_manager.migrate(0.0)
        assert resident.rule_id in hermes.main

        fragmented = rule("10.0.0.0/16", 100, port=2)
        hermes.apply(FlowMod.add(fragmented))
        assert hermes.partition_map.is_partitioned(fragmented.rule_id)
        # Migrate: the family collapses back into the original inside main.
        hermes.rule_manager.migrate(1.0)
        assert fragmented.rule_id in hermes.main

        # Now a lower-priority rule overlapping it gets partitioned with
        # the migrated rule as (one of) its blockers.
        lower = rule("10.0.0.0/12", 50, port=3)
        hermes.apply(FlowMod.add(lower))
        assert hermes.lookup(key("10.0.1.1")).action.port == 2

        # Deleting the blocker's logical rule must lift the cuts.
        hermes.apply(FlowMod.delete(fragmented.rule_id))
        hit = hermes.lookup(key("10.0.1.1"))
        assert hit is not None and hit.action.port == 3


class TestUnpartitionRemovesStaleFragments:
    """Figure 6: restoration must delete the partition fragments, not just
    add the original back — otherwise stale fragments survive the logical
    rule's deletion."""

    def test_no_stale_fragments_after_blocker_delete(self):
        hermes = make_hermes(lowest_priority_fastpath=False)
        blocker = rule("192.168.1.0/26", 99, port=1)
        hermes.apply(FlowMod.add(blocker))
        hermes.rule_manager.migrate(0.0)
        cut = rule("192.168.1.0/24", 10, port=2)
        hermes.apply(FlowMod.add(cut))
        fragment_count = len(hermes.partition_map.fragment_ids(cut.rule_id))
        assert fragment_count >= 2
        occupancy_before = hermes.occupancy()
        hermes.apply(FlowMod.delete(blocker.rule_id))
        # blocker gone (-1), fragments replaced by the single original
        # (-fragment_count + 1).
        assert hermes.occupancy() == occupancy_before - 1 - fragment_count + 1
        # And deleting the logical rule now leaves nothing behind.
        hermes.apply(FlowMod.delete(cut.rule_id))
        assert hermes.lookup(key("192.168.1.200")) is None
        assert hermes.lookup(key("192.168.1.5")) is None
        assert hermes.occupancy() == 0
