"""Tests for the command-line entry points."""

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.simulator.__main__ import build_parser, main as simulator_main


class TestExperimentsCli:
    def test_runs_one_fast_experiment(self, capsys):
        assert experiments_main(["fig14"]) == 0
        output = capsys.readouterr().out
        assert "Figure 14" in output
        assert "overhead" in output

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert experiments_main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_multiple_experiments(self, capsys):
        assert experiments_main(["table1", "fig14"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Figure 14" in output


class TestSimulatorCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.topology == "fat-tree"
        assert args.scheme == "naive"
        assert not args.reactive

    def test_parser_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "magic"])

    def test_tiny_fat_tree_run(self, capsys):
        code = simulator_main(
            [
                "--topology", "fat-tree", "--k", "4", "--jobs", "3",
                "--scheme", "hermes", "--occupancy", "100",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "completed flows" in output
        assert "JCT" in output

    def test_tiny_isp_run(self, capsys):
        code = simulator_main(
            [
                "--topology", "abilene", "--duration", "0.5",
                "--scheme", "naive", "--switch", "dell-8132f",
                "--occupancy", "50",
            ]
        )
        assert code == 0
        assert "RIT" in capsys.readouterr().out

    def test_reactive_flag(self, capsys):
        code = simulator_main(
            [
                "--topology", "fat-tree", "--k", "4", "--jobs", "2",
                "--reactive", "--occupancy", "0", "--switch", "ideal",
            ]
        )
        assert code == 0
