#!/usr/bin/env bash
# Regenerate everything: tests, benchmarks, and the paper artifacts.
#
# Usage: scripts/reproduce.sh [output-dir]
#
# Writes test_output.txt, bench_output.txt, and artifacts.txt (local
# logs, not checked in) into the output directory (default: results/).
# The benchmarks themselves write hermes-bench/1 JSON artifacts plus
# perf_history.jsonl, and INDEX.md is regenerated at the end — those
# are the committed surface.

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

echo "== 1/3 unit, integration, and property tests =="
python -m pytest tests/ 2>&1 | tee "$out/test_output.txt" | tail -3

echo "== 2/3 per-table/figure benchmarks =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$out/bench_output.txt" | tail -5

echo "== 3/3 rendered paper artifacts =="
python -m repro.experiments all | tee "$out/artifacts.txt" | grep "^== "

python -m repro.obs perf index "$out"

echo "Done. Outputs in $out/ (see $out/INDEX.md)."
