#!/usr/bin/env python3
"""Quickstart: give a switch a 5 ms insertion guarantee with Hermes.

This walks the paper's operator workflow (Section 7):

1. register a switch (a Pica8 P-3290 timing model);
2. preview the TCAM cost of several guarantees with ``QoSOverheads``;
3. install a 5 ms guarantee with ``CreateTCAMQoS``;
4. push a burst of rule insertions and verify every one met the bound;
5. inspect the shadow/main split and the Rule Manager's migrations.

Run: ``python examples/quickstart.py``
"""

from repro import (
    Action,
    FlowMod,
    GuaranteeSpec,
    HermesService,
    Rule,
    pica8_p3290,
)


def main() -> None:
    service = HermesService()
    service.register_switch("edge-1", pica8_p3290())

    print("TCAM overhead preview (fraction of the TCAM spent on the shadow):")
    for guarantee_ms in (1, 5, 10):
        overhead = service.QoSOverheads(
            "edge-1", GuaranteeSpec.milliseconds(guarantee_ms)
        )
        print(f"  {guarantee_ms:>2} ms guarantee -> {100 * overhead:.1f}% of TCAM")

    handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
    print(
        f"\nCreated QoS #{handle.shadow_id}: shadow={handle.shadow_capacity} "
        f"entries ({100 * handle.overhead:.1f}% overhead), admitted rate "
        f"{handle.max_burst_rate:.0f} rules/s (Equation 2)"
    )

    hermes = service.installer(handle.shadow_id)
    worst = 0.0
    time = 0.0
    for index in range(1000):
        rule = Rule.from_prefix(
            f"10.{index // 250}.{index % 250}.0/24", 100 + index, Action.output(1)
        )
        hermes.advance_time(time)
        result = hermes.apply(FlowMod.add(rule))
        if result.used_guaranteed_path:
            worst = max(worst, result.latency)
        time += 1e-3  # 1000 rules per second

    print(f"\nInserted 1000 rules at 1000 rules/s:")
    print(f"  worst guaranteed-path insertion: {worst * 1e3:.3f} ms (bound: 5 ms)")
    print(f"  guarantee violations: {hermes.violations}")
    print(
        f"  shadow occupancy: {hermes.shadow.occupancy}/{hermes.shadow.capacity}, "
        f"main occupancy: {hermes.main.occupancy}/{hermes.main.capacity}"
    )
    print(f"  migrations run by the Rule Manager: {len(hermes.rule_manager.migrations)}")


if __name__ == "__main__":
    main()
