#!/usr/bin/env python3
"""Data-center traffic engineering: the paper's motivating scenario.

A MapReduce workload (Facebook-style job mix) runs on a fat-tree data
center whose proactive TE application periodically moves congested flows to
colder paths.  Every reroute costs TCAM rule installations on the switches
of the new path — and those installations are what separate a raw switch
from Hermes.

The example runs the same workload three times (zero-latency control plane,
raw Pica8 P-3290, Hermes on the same Pica8) and reports rule-installation
and job-completion statistics.

Run: ``python examples/datacenter_te.py``  (about a minute)
"""

import numpy as np

from repro import Simulation, SimulationConfig, TeAppConfig, make_installer
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs, is_short_job


def run_once(graph, flows, scheme: str, switch: str):
    config = SimulationConfig(
        te=TeAppConfig(epoch=0.2, utilization_threshold=0.5, max_moves_per_epoch=24),
        baseline_occupancy=500,
        initial_path_policy="static",
        max_time=1200.0,
    )
    factory = lambda name: make_installer(scheme, get_switch_model(switch))
    simulation = Simulation(graph, list(flows), factory, config)
    return simulation.run()


def describe(label: str, metrics, short_ids) -> None:
    rits = metrics.rits()
    jcts = metrics.jcts()
    short_jcts = [v for k, v in jcts.items() if k in short_ids]
    print(f"{label}:")
    if rits:
        print(
            f"  rule installation: median {np.median(rits) * 1e3:8.2f} ms, "
            f"p99 {np.percentile(rits, 99) * 1e3:8.2f} ms ({len(rits)} installs)"
        )
    print(
        f"  job completion:    median {np.median(list(jcts.values())):6.2f} s, "
        f"short-job median {np.median(short_jcts):6.2f} s"
    )


def main() -> None:
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    jobs = generate_jobs(
        hosts(graph), job_count=40, arrival_rate=4.0, rng=np.random.default_rng(0)
    )
    short_ids = {job.job_id for job in jobs if is_short_job(job)}
    flows = flows_of(jobs)
    print(
        f"Workload: {len(jobs)} MapReduce jobs, {len(flows)} flows, "
        f"{sum(f.size for f in flows) / 1e9:.1f} GB total on a k=4 fat tree\n"
    )

    describe("Zero-latency control plane", run_once(graph, flows, "naive", "ideal"), short_ids)
    describe("Raw Pica8 P-3290", run_once(graph, flows, "naive", "pica8-p3290"), short_ids)
    describe("Hermes on the Pica8 (5 ms)", run_once(graph, flows, "hermes", "pica8-p3290"), short_ids)


if __name__ == "__main__":
    main()
