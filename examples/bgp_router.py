#!/usr/bin/env python3
"""Hermes under a traditional BGP control plane (Sections 2.3 / 8.4).

A synthetic BGPStream-style update feed (low background churn plus
path-hunting bursts above 1000 updates/s) runs through a RIB with the
standard best-path decision process; only the best-path changes that
actually alter the FIB reach the TCAM.  The resulting FlowMod stream is
replayed against a raw Pica8 and against Hermes with a 5 ms guarantee.

Run: ``python examples/bgp_router.py``
"""

import numpy as np

from repro import GuaranteeSpec, HermesConfig
from repro.bgp import BgpRouter, generate_updates, get_router_profile, update_rate_series
from repro.experiments.common import replay_trace
from repro.traffic import TimedFlowMod


def main() -> None:
    profile = get_router_profile("equinix-chicago")
    updates = generate_updates(profile, duration=60.0, rng=np.random.default_rng(7))
    rates = [rate for _, rate in update_rate_series(updates)]
    print(
        f"Vantage point {profile.name}: {len(updates)} BGP updates over 60 s\n"
        f"  update rate: median {np.median(rates):.0f}/s, "
        f"p99 {np.percentile(rates, 99):.0f}/s, max {max(rates):.0f}/s"
    )

    router = BgpRouter()
    trace = []
    for update in updates:
        for flow_mod in router.process(update):
            trace.append(TimedFlowMod(time=update.time, flow_mod=flow_mod))
    stats = router.fib.stats
    print(
        f"  RIB -> FIB: {stats.fib_actions} TCAM actions "
        f"({stats.adds} adds / {stats.modifies} modifies / {stats.deletes} "
        f"deletes), {stats.suppressed} updates absorbed by the RIB\n"
    )

    raw = replay_trace(trace, "naive", "pica8-p3290")
    hermes = replay_trace(
        trace,
        "hermes",
        "pica8-p3290",
        hermes_config=HermesConfig(
            guarantee=GuaranteeSpec.milliseconds(5), slack=1.0, admission_control=False
        ),
    )
    for label, outcome in (("Raw Pica8 P-3290", raw), ("Hermes (5 ms)", hermes)):
        times = np.asarray(outcome.response_times)
        print(
            f"{label}: median {np.median(times) * 1e3:7.3f} ms, "
            f"p99 {np.percentile(times, 99) * 1e3:8.3f} ms, "
            f"max {times.max() * 1e3:8.3f} ms"
        )
    print(
        "\nThe burst windows are where the raw switch falls over; Hermes's "
        "shadow table keeps every insertion bounded through them."
    )


if __name__ == "__main__":
    main()
