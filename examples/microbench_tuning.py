#!/usr/bin/env python3
"""Tuning Hermes: predictors, correctors, and slack (Sections 5.1 / 8.6).

Hermes's guarantees rest on migrating the shadow table *before* it fills,
which in turn rests on forecasting the arrival rate.  This example sweeps
the predictor (EWMA / Cubic Spline / ARMA), the corrector (Slack /
Deadzone), and the slack factor on a bursty microbench trace, and prints
the violation rate and latency of each configuration — the tuning loop an
operator would run before picking a production configuration.

Run: ``python examples/microbench_tuning.py``
"""

import numpy as np

from repro import GuaranteeSpec, HermesConfig
from repro.experiments.common import replay_trace
from repro.traffic import MicrobenchConfig, generate_trace, seed_rules


def evaluate(predictor: str, corrector: str, slack: float) -> tuple:
    trace_config = MicrobenchConfig(
        arrival_rate=1000.0, overlap_rate=0.6, duration=1.0
    )
    outcome = replay_trace(
        generate_trace(trace_config),
        "hermes",
        "dell-8132f",
        hermes_config=HermesConfig(
            guarantee=GuaranteeSpec.milliseconds(5),
            predictor=predictor,
            corrector=corrector,
            slack=slack,
            deadzone_margin=50,
            admission_control=False,
            lowest_priority_fastpath=False,
        ),
        prefill_rules=seed_rules(trace_config),
    )
    latencies = np.asarray(outcome.response_times) * 1e3
    return (
        float(latencies.mean()),
        float(np.percentile(latencies, 99)),
        outcome.installer.violation_percentage(),
    )


def main() -> None:
    print("Workload: 1000 updates/s, 60% overlap, Dell 8132F, 5 ms guarantee\n")
    print(f"{'predictor':<14}{'corrector':<11}{'slack':<7}"
          f"{'mean ms':>9}{'p99 ms':>9}{'violations %':>14}")
    for predictor in ("ewma", "cubic-spline", "arma"):
        for corrector, slack in (
            ("slack", 0.0),
            ("slack", 0.4),
            ("slack", 1.0),
            ("deadzone", 0.0),
        ):
            mean_ms, p99_ms, violations = evaluate(predictor, corrector, slack)
            slack_label = f"{int(slack * 100)}%" if corrector == "slack" else "-"
            print(
                f"{predictor:<14}{corrector:<11}{slack_label:<7}"
                f"{mean_ms:>9.3f}{p99_ms:>9.2f}{violations:>14.2f}"
            )
    print(
        "\nThe paper's pick — Cubic Spline + Slack 100% — should sit at or "
        "near the bottom of both latency columns with zero violations."
    )


if __name__ == "__main__":
    main()
