#!/usr/bin/env python3
"""Multi-table switches with per-table guarantees (Section 6).

Modern pipelines split functionality across logical TCAM tables — here an
ACL table in front of a forwarding table.  Hermes carves each independently,
so the operator can buy a *tight* bound for the security-critical ACL table
(rules must take effect fast) and a looser one for forwarding, while the
pipeline keeps its original miss semantics.

Also demonstrates the composable match predicates: only the tenant's
high-priority rules get the forwarding guarantee.

Run: ``python examples/multitable_acl.py``
"""

from repro.core import (
    GuaranteeSpec,
    LogicalTableSpec,
    MultiTableHermes,
    priority_band,
    within_prefix,
)
from repro.switchsim import FlowMod, MissBehavior
from repro.tcam import Action, Prefix, Rule, pica8_p3290


def key(address: str) -> int:
    return Prefix.from_string(address).network


def main() -> None:
    tenant_rules = within_prefix("10.0.0.0/8") & priority_band(100, 999)
    switch = MultiTableHermes(
        pica8_p3290,
        [
            LogicalTableSpec(
                name="acl",
                guarantee=GuaranteeSpec.milliseconds(1),
                on_miss=MissBehavior.GOTO_NEXT,
            ),
            LogicalTableSpec(
                name="forwarding",
                guarantee=GuaranteeSpec.milliseconds(10),
                on_miss=MissBehavior.DROP,
                predicate=tenant_rules,
            ),
        ],
    )
    print("Per-table guarantees:", {
        name: (f"{value * 1e3:.0f} ms" if value else "best-effort")
        for name, value in switch.guarantees().items()
    })
    for name in switch.table_names():
        table = switch.table(name)
        print(
            f"  {name}: shadow {table.shadow.capacity} entries "
            f"({100 * table.shadow.capacity / table.timing.capacity:.1f}% of TCAM)"
        )

    # A security block lands in the ACL table within 1 ms.
    block = Rule.from_prefix("198.51.100.0/24", 500, Action.drop())
    result = switch.apply("acl", FlowMod.add(block))
    print(
        f"\nACL block installed in {result.latency * 1e3:.3f} ms "
        f"(bound 1 ms, guaranteed path: {result.used_guaranteed_path})"
    )

    # Tenant forwarding rules get the 10 ms guarantee; others are best effort.
    tenant = Rule.from_prefix("10.1.0.0/16", 200, Action.output(4))
    other = Rule.from_prefix("192.0.2.0/24", 200, Action.output(7))
    tenant_result = switch.apply("forwarding", FlowMod.add(tenant))
    other_result = switch.apply("forwarding", FlowMod.add(other))
    print(
        f"tenant rule: guaranteed={tenant_result.used_guaranteed_path}, "
        f"other rule: guaranteed={other_result.used_guaranteed_path}"
    )

    # Pipeline semantics: ACL hit drops, ACL miss falls through, forwarding
    # miss keeps the original drop behaviour.
    verdict_blocked = switch.process(key("198.51.100.7"))
    verdict_tenant = switch.process(key("10.1.2.3"))
    verdict_unknown = switch.process(key("203.0.113.9"))
    print(
        f"\nlookups: blocked -> {verdict_blocked.rule.action}, "
        f"tenant -> {verdict_tenant.rule.action}, "
        f"unknown -> {'dropped' if verdict_unknown.dropped else 'matched'}"
    )


if __name__ == "__main__":
    main()
